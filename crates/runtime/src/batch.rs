//! Parallel batch execution of seeded solver runs.
//!
//! [`BatchRunner`] is the parallel counterpart of
//! `cnash_core::ExperimentRunner`: it fans `runs` independent seeded
//! runs of one solver across a worker pool, folds the outcomes through
//! the streaming [`ReportAccumulator`] **in seed order**, and so
//! produces bit-identical [`GameReport`]s at any thread count.
//!
//! An optional [`EarlyStop`] condition turns the batch into an anytime
//! computation: the runner broadcasts cancellation to the pool the
//! moment the folded prefix satisfies the condition, and reports
//! exactly that prefix. Early-stop decisions are made on *runtime
//! re-verified* equilibria (exact software check against the game), so
//! a buggy or adversarial solver claiming success cannot trigger a
//! stop.

use crate::pool::{effective_threads, fan_out_ordered, CancelToken};
use cnash_core::experiment::ReportAccumulator;
use cnash_core::{GameReport, NashSolver, RunOutcome};
use cnash_game::Equilibrium;
use std::ops::ControlFlow;
use std::time::Instant;

/// A condition that ends a batch before all scheduled runs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EarlyStop {
    /// Stop once `n` runs returned a (re-verified) true equilibrium.
    Successes(usize),
    /// Stop once the distinct verified equilibria found cover `n`
    /// ground-truth equilibria.
    Coverage(usize),
}

impl EarlyStop {
    /// Stop at the first verified equilibrium — the portfolio default.
    pub const FIRST_VERIFIED: EarlyStop = EarlyStop::Successes(1);
}

/// Result of a batch execution.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Aggregated statistics over the executed prefix of runs.
    pub report: GameReport,
    /// Runs originally scheduled.
    pub scheduled_runs: usize,
    /// Runs actually folded into `report` (`< scheduled_runs` only when
    /// stopped early or cancelled).
    pub executed_runs: usize,
    /// Whether the early-stop condition ended the batch.
    pub stopped_early: bool,
    /// Whether an external (portfolio) cancellation ended the batch.
    pub cancelled: bool,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock duration of the batch (host time, not model time).
    pub wall_seconds: f64,
}

/// Runs repeated solver evaluations with sequential seeds, in parallel.
///
/// Seed assignment is by run index (`base_seed + k`), independent of
/// which worker executes the run, and aggregation folds outcomes in
/// index order — so for a fixed `(runs, base_seed, early_stop)` the
/// resulting [`GameReport`] is bit-identical at 1, 2 or 64 threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRunner {
    /// Independent runs per (solver, game) pair.
    pub runs: usize,
    /// First seed; run `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Optional early-stop condition.
    pub early_stop: Option<EarlyStop>,
}

impl BatchRunner {
    /// Creates a runner using all available cores and no early stop.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn new(runs: usize, base_seed: u64) -> Self {
        assert!(runs > 0, "need at least one run");
        Self {
            runs,
            base_seed,
            threads: 0,
            early_stop: None,
        }
    }

    /// Returns a copy using `threads` workers (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with an early-stop condition.
    pub fn early_stop(mut self, stop: EarlyStop) -> Self {
        self.early_stop = Some(stop);
        self
    }

    /// Evaluates `solver` against `ground_truth`, in parallel.
    pub fn evaluate(&self, solver: &dyn NashSolver, ground_truth: &[Equilibrium]) -> BatchReport {
        self.evaluate_cancellable(solver, ground_truth, &CancelToken::new())
    }

    /// Like [`evaluate`](Self::evaluate), but additionally stops (with
    /// partial results) when `cancel` is cancelled externally — the
    /// portfolio runner's broadcast mechanism.
    pub fn evaluate_cancellable(
        &self,
        solver: &dyn NashSolver,
        ground_truth: &[Equilibrium],
        cancel: &CancelToken,
    ) -> BatchReport {
        let start = Instant::now();
        let mut acc = ReportAccumulator::new(solver.name(), solver.game());
        let mut stopped_early = false;

        let base_seed = self.base_seed;
        let executed = fan_out_ordered(
            self.runs,
            self.threads,
            cancel,
            |k| solver.run(base_seed.wrapping_add(k as u64)),
            |_k, out: RunOutcome| {
                acc.fold(&out);
                // The accumulator re-verifies every claimed success in
                // exact arithmetic, so these counts can never be
                // satisfied by an unverified "equilibrium".
                let stop = match self.early_stop {
                    Some(EarlyStop::Successes(n)) => acc.successes() >= n,
                    Some(EarlyStop::Coverage(n)) => acc.covered(ground_truth) >= n,
                    None => false,
                };
                if stop {
                    stopped_early = true;
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );

        // `cancelled` marks an external cancellation that actually cut
        // the batch short — a batch that finished (or early-stopped) all
        // on its own is not "cancelled" even if a sibling's broadcast
        // arrived after the fact.
        let cancelled = cancel.is_cancelled() && !stopped_early && executed < self.runs;

        BatchReport {
            report: acc.finish(ground_truth),
            scheduled_runs: self.runs,
            executed_runs: executed,
            stopped_early,
            cancelled,
            threads: effective_threads(self.threads),
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_core::{CNashConfig, CNashSolver, ExperimentRunner};
    use cnash_game::games;
    use cnash_game::support_enum::enumerate_equilibria;

    fn bos_solver() -> (CNashSolver, Vec<Equilibrium>) {
        let game = games::battle_of_the_sexes();
        let truth = enumerate_equilibria(&game, 1e-9);
        let solver =
            CNashSolver::new(&game, CNashConfig::ideal(12).with_iterations(2000), 0).expect("maps");
        (solver, truth)
    }

    #[test]
    fn matches_sequential_experiment_runner() {
        let (solver, truth) = bos_solver();
        let sequential = ExperimentRunner::new(12, 7).evaluate(&solver, &truth);
        let parallel = BatchRunner::new(12, 7).threads(4).evaluate(&solver, &truth);
        assert_eq!(parallel.report, sequential);
        assert_eq!(parallel.executed_runs, 12);
        assert!(!parallel.stopped_early);
    }

    #[test]
    fn early_stop_reports_deterministic_prefix() {
        let (solver, truth) = bos_solver();
        let runner = BatchRunner::new(50, 3).early_stop(EarlyStop::Successes(2));
        let a = runner.threads(1).evaluate(&solver, &truth);
        let b = runner.threads(8).evaluate(&solver, &truth);
        assert!(a.stopped_early);
        assert_eq!(a.executed_runs, b.executed_runs);
        assert_eq!(a.report, b.report);
        assert!(a.executed_runs < 50, "ideal config should stop early");
    }

    #[test]
    fn coverage_early_stop() {
        let (solver, truth) = bos_solver();
        let out = BatchRunner::new(200, 0)
            .threads(2)
            .early_stop(EarlyStop::Coverage(2))
            .evaluate(&solver, &truth);
        assert!(out.stopped_early);
        assert!(out.report.covered >= 2);
    }

    #[test]
    fn external_cancellation_is_flagged() {
        let (solver, truth) = bos_solver();
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = BatchRunner::new(20, 0)
            .threads(2)
            .evaluate_cancellable(&solver, &truth, &cancel);
        assert!(out.cancelled);
        assert_eq!(out.report.runs, out.executed_runs);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = BatchRunner::new(0, 0);
    }
}
