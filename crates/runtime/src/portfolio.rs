//! Portfolio solving: race solver variants on the same instance.
//!
//! A portfolio submits several `(solver, run-budget)` jobs — typically
//! different solver configurations or hardware seeds over one game —
//! and runs them concurrently. In [`PortfolioStop::FirstTarget`] mode,
//! the first job to satisfy its early-stop condition broadcasts
//! cancellation to every sibling, so hardware variants that converge
//! slowly stop burning cores the moment any variant has a verified
//! answer (the "early-stop broadcast" of the batch-solving plan in
//! PAPERS.md / SNIPPETS.md).

use crate::batch::{BatchReport, BatchRunner, EarlyStop};
use crate::pool::{effective_threads, CancelToken};
use cnash_core::NashSolver;
use cnash_game::Equilibrium;

/// How jobs in a portfolio interact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortfolioStop {
    /// Jobs run to their own completion independently.
    Independent,
    /// The first job to reach its early-stop target cancels the rest.
    FirstTarget,
}

/// One entry of a portfolio: a solver with a run budget.
pub struct PortfolioJob {
    /// Display label (solver + variant).
    pub label: String,
    /// The solver under evaluation.
    pub solver: Box<dyn NashSolver>,
    /// Ground-truth equilibria of the solver's game.
    pub ground_truth: Vec<Equilibrium>,
    /// Scheduled runs.
    pub runs: usize,
    /// First seed of the batch.
    pub base_seed: u64,
    /// Per-job early-stop condition. In `FirstTarget` mode, jobs without
    /// one default to [`EarlyStop::FIRST_VERIFIED`].
    pub early_stop: Option<EarlyStop>,
}

/// Result of one portfolio entry.
#[derive(Debug, Clone)]
pub struct PortfolioJobResult {
    /// The job's label.
    pub label: String,
    /// Batch statistics (partial if the job was cancelled).
    pub batch: BatchReport,
}

/// Result of a portfolio execution.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Per-job results, in submission order.
    pub results: Vec<PortfolioJobResult>,
    /// Index (into `results`) of the first job, in submission order,
    /// that reached its early-stop target, if any.
    ///
    /// The winner's report is deterministic for a fixed job spec: its
    /// batch folded a deterministic seed-ordered prefix. Reports of
    /// *cancelled* losers are timing-dependent partial aggregates.
    pub winner: Option<usize>,
}

/// Executes portfolios of batch jobs over a shared thread budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioRunner {
    /// Total worker threads across all jobs (`0` = all cores).
    pub threads: usize,
    /// Interaction mode.
    pub stop: PortfolioStop,
}

impl PortfolioRunner {
    /// Creates a runner over all cores in `FirstTarget` mode.
    pub fn new() -> Self {
        Self {
            threads: 0,
            stop: PortfolioStop::FirstTarget,
        }
    }

    /// Returns a copy with a total thread budget (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with the given interaction mode.
    pub fn stop(mut self, stop: PortfolioStop) -> Self {
        self.stop = stop;
        self
    }

    /// Runs all `jobs` concurrently and collects their results.
    pub fn run(&self, jobs: &[PortfolioJob]) -> PortfolioOutcome {
        if jobs.is_empty() {
            return PortfolioOutcome {
                results: Vec::new(),
                winner: None,
            };
        }
        let shared = CancelToken::new();
        // Split the thread budget: the first `total % jobs` jobs get one
        // extra worker, and every job gets at least one (so with more
        // jobs than budgeted threads the OS time-slices the overflow).
        let total_threads = effective_threads(self.threads);
        let base = total_threads / jobs.len();
        let extra = total_threads % jobs.len();

        let mut batches: Vec<Option<BatchReport>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (index, job) in jobs.iter().enumerate() {
                let shared = shared.clone();
                let stop_mode = self.stop;
                let job_threads = (base + usize::from(index < extra)).max(1);
                handles.push(scope.spawn(move || {
                    let early_stop = match (stop_mode, job.early_stop) {
                        (PortfolioStop::FirstTarget, None) => Some(EarlyStop::FIRST_VERIFIED),
                        (_, stop) => stop,
                    };
                    // Independent jobs must not observe each other: only
                    // FirstTarget mode shares the cancellation token
                    // (an early-stopping batch cancels its own token,
                    // which would otherwise leak into siblings).
                    let token = match stop_mode {
                        PortfolioStop::FirstTarget => shared.clone(),
                        PortfolioStop::Independent => CancelToken::new(),
                    };
                    let mut runner = BatchRunner::new(job.runs, job.base_seed).threads(job_threads);
                    runner.early_stop = early_stop;
                    let batch =
                        runner.evaluate_cancellable(job.solver.as_ref(), &job.ground_truth, &token);
                    if batch.stopped_early && stop_mode == PortfolioStop::FirstTarget {
                        shared.cancel();
                    }
                    batch
                }));
            }
            for handle in handles {
                batches.push(Some(handle.join().expect("portfolio job panicked")));
            }
        });

        let results: Vec<PortfolioJobResult> = jobs
            .iter()
            .zip(batches)
            .map(|(job, batch)| PortfolioJobResult {
                label: job.label.clone(),
                batch: batch.expect("every job joined"),
            })
            .collect();
        let winner = results.iter().position(|r| r.batch.stopped_early);
        PortfolioOutcome { results, winner }
    }
}

impl Default for PortfolioRunner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_core::{CNashConfig, CNashSolver, IdealSolver};
    use cnash_game::games;
    use cnash_game::support_enum::enumerate_equilibria;

    fn jobs() -> Vec<PortfolioJob> {
        let game = games::battle_of_the_sexes();
        let truth = enumerate_equilibria(&game, 1e-9);
        let cfg = CNashConfig::ideal(12).with_iterations(2000);
        vec![
            PortfolioJob {
                label: "cnash-hw0".into(),
                solver: Box::new(CNashSolver::new(&game, cfg, 0).expect("maps")),
                ground_truth: truth.clone(),
                runs: 40,
                base_seed: 0,
                early_stop: None,
            },
            PortfolioJob {
                label: "ideal".into(),
                solver: Box::new(IdealSolver::new(&game, cfg)),
                ground_truth: truth,
                runs: 40,
                base_seed: 1000,
                early_stop: None,
            },
        ]
    }

    #[test]
    fn first_target_produces_verified_winner() {
        let outcome = PortfolioRunner::new().threads(4).run(&jobs());
        let winner = outcome.winner.expect("ideal-config jobs find equilibria");
        let batch = &outcome.results[winner].batch;
        assert!(batch.stopped_early);
        assert!(batch.report.distribution.pure_ne + batch.report.distribution.mixed_ne > 0);
        // The winning prefix ends on the verified success that fired
        // the stop.
        assert!(batch.executed_runs <= batch.scheduled_runs);
    }

    #[test]
    fn independent_mode_runs_everything() {
        let outcome = PortfolioRunner::new()
            .threads(2)
            .stop(PortfolioStop::Independent)
            .run(&jobs());
        assert_eq!(outcome.winner, None);
        for r in &outcome.results {
            assert_eq!(r.batch.executed_runs, r.batch.scheduled_runs);
            assert!(!r.batch.cancelled);
        }
    }

    #[test]
    fn independent_jobs_do_not_observe_siblings_early_stop() {
        // Job 0 stops at its first verified success; job 1 must still
        // run every scheduled run (regression: a shared cancel token
        // leaked one job's early stop into its siblings).
        let mut jobs = jobs();
        jobs[0].early_stop = Some(EarlyStop::FIRST_VERIFIED);
        let outcome = PortfolioRunner::new()
            .threads(2)
            .stop(PortfolioStop::Independent)
            .run(&jobs);
        assert!(outcome.results[0].batch.stopped_early);
        let sibling = &outcome.results[1].batch;
        assert!(!sibling.cancelled);
        assert_eq!(sibling.executed_runs, sibling.scheduled_runs);
    }

    #[test]
    fn empty_portfolio() {
        let outcome = PortfolioRunner::new().run(&[]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.winner, None);
    }
}
