//! Minimal JSON document model, parser and writer.
//!
//! The workspace builds in hermetic environments without crates.io
//! access, so the instance library carries its own dependency-free JSON
//! implementation instead of `serde_json`. It supports the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null); general numbers are modelled as `f64`, which is exact for
//! every payoff, seed index and count this workspace serialises
//! (< 2^53). Unsigned counters that may legitimately exceed 2^53
//! (cache hit totals, telemetry counters) are carried exactly by the
//! dedicated [`Json::Uint`] variant ([`Json::uint`] emitter): the
//! parser likewise decodes digit-only literals above 2^53 as `Uint`,
//! so such counters round-trip without the silent precision loss an
//! `f64` would introduce. `Num` and `Uint` nodes holding the same
//! mathematical value compare equal and serialise identically.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A non-negative integer carried exactly. `f64` loses precision
    /// past 2^53; counters (cache hits, telemetry totals) use this
    /// variant so every `u64` value survives serialisation.
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), so output is canonical.
    Obj(BTreeMap<String, Json>),
}

impl PartialEq for Json {
    /// Structural equality, except that `Num`/`Uint` compare by
    /// mathematical value: `Uint(5) == Num(5.0)`. A parse of a
    /// serialised document therefore always equals the original, even
    /// though small integers parse back as `Num`.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Uint(a), Json::Uint(b)) => a == b,
            (Json::Num(n), Json::Uint(u)) | (Json::Uint(u), Json::Num(n)) => {
                // An integral f64 in [0, 2^64) is an exact integer, so
                // the cast below is lossless. (`u64::MAX as f64`
                // rounds up to 2^64, which the `<` correctly excludes.)
                n.fract() == 0.0 && *n >= 0.0 && *n < u64::MAX as f64 && *n as u64 == *u
            }
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

/// Error produced by [`Json::parse`] or typed accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the error in the input (0 for accessor errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
        offset,
    })
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string node.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number node.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Builds an exact unsigned-integer node. Use this for counters:
    /// unlike [`Json::num`]`(x as f64)`, no value of `v` is rounded.
    pub fn uint(v: u64) -> Json {
        Json::Uint(v)
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err("trailing characters after document", pos);
        }
        Ok(value)
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialises to a single line with no whitespace — the framing the
    /// JSON-lines service protocol requires (one document per `\n`).
    /// Object keys are sorted (BTreeMap), so the output is canonical:
    /// equal documents always serialise to equal byte strings.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(*v, out),
            Json::Uint(u) => out.push_str(&u.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(*v, out),
            Json::Uint(u) => out.push_str(&u.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    // ---- typed accessors -------------------------------------------------

    /// The value of object key `key`.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not an object or lacks the key.
    pub fn get(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(map) => map.get(key).ok_or_else(|| JsonError {
                message: format!("missing key `{key}`"),
                offset: 0,
            }),
            _ => err(format!("expected object with key `{key}`"), 0),
        }
    }

    /// The value of object key `key`, if present and non-null.
    pub fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => match map.get(key) {
                Some(Json::Null) | None => None,
                Some(v) => Some(v),
            },
            _ => None,
        }
    }

    /// This node as a string.
    ///
    /// # Errors
    ///
    /// Errors if the node is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, found {}", other.kind()), 0),
        }
    }

    /// This node as a number. Exact for `Num`; a `Uint` above 2^53
    /// rounds to the nearest representable `f64` (use [`Json::as_u64`]
    /// for exact counter reads).
    ///
    /// # Errors
    ///
    /// Errors if the node is not a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(v) => Ok(*v),
            Json::Uint(u) => Ok(*u as f64),
            other => err(format!("expected number, found {}", other.kind()), 0),
        }
    }

    /// This node as a non-negative integer.
    ///
    /// # Errors
    ///
    /// Errors if the node is not a non-negative integral number, or
    /// (for `Num`) exceeds 2^53 where `f64` integrality is ambiguous.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        usize::try_from(self.as_u64()?).map_err(|_| JsonError {
            message: "integer exceeds usize".to_string(),
            offset: 0,
        })
    }

    /// This node as a `u64`. Exact for the full `u64` range when the
    /// node is a `Uint`.
    ///
    /// # Errors
    ///
    /// Errors if the node is not a non-negative integral number, or
    /// (for `Num`) exceeds 2^53 where `f64` integrality is ambiguous.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        if let Json::Uint(u) = self {
            return Ok(*u);
        }
        let v = self.as_f64()?;
        if v < 0.0 || v.fract() != 0.0 || v > (1u64 << 53) as f64 {
            return err(format!("expected non-negative integer, found {v}"), 0);
        }
        Ok(v as u64)
    }

    /// This node as a bool.
    ///
    /// # Errors
    ///
    /// Errors if the node is not a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, found {}", other.kind()), 0),
        }
    }

    /// This node as an array slice.
    ///
    /// # Errors
    ///
    /// Errors if the node is not an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, found {}", other.kind()), 0),
        }
    }

    /// Errors if this object holds a key outside `allowed`, naming the
    /// offending key and the `context` it appeared in. Wire-facing
    /// parsers call this after reading their known fields so a typo
    /// (`"iteratons"`) fails loudly instead of silently falling back to
    /// a default. Non-object nodes pass — their shape errors surface
    /// from the typed accessors instead.
    ///
    /// # Errors
    ///
    /// Errors on the first unknown key (keys are sorted, so the error
    /// is deterministic).
    pub fn expect_keys(&self, context: &str, allowed: &[&str]) -> Result<(), JsonError> {
        if let Json::Obj(map) = self {
            for key in map.keys() {
                if !allowed.contains(&key.as_str()) {
                    return err(format!("unknown key `{key}` in {context}"), 0);
                }
            }
        }
        Ok(())
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) | Json::Uint(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; encode as null like serde_json does.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < (1u64 << 53) as f64 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn read_hex4(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Containers deeper than this abort parsing with an error instead of
/// risking a stack overflow on hostile input.
const MAX_DEPTH: usize = 512;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return err("maximum nesting depth exceeded", *pos);
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input", *pos),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        err(format!("expected `{lit}`"), *pos)
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    // Digit-only literals past 2^53 cannot survive an f64 round trip;
    // decode them into the exact-integer variant instead.
    if text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(u) = text.parse::<u64>() {
            if u > (1u64 << 53) {
                return Ok(Json::Uint(u));
            }
        }
    }
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Json::Num(v)),
        _ => err(format!("invalid number `{text}`"), start),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string", *pos),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let Some(unit) = read_hex4(bytes, *pos + 1) else {
                            return err("invalid \\u escape", *pos);
                        };
                        *pos += 4;
                        let scalar = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: must pair with \uDC00-\uDFFF.
                            if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return err("unpaired surrogate in \\u escape", *pos);
                            }
                            let Some(low) = read_hex4(bytes, *pos + 3) else {
                                return err("invalid \\u escape", *pos);
                            };
                            if !(0xDC00..0xE000).contains(&low) {
                                return err("unpaired surrogate in \\u escape", *pos);
                            }
                            *pos += 6;
                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            unit
                        };
                        match char::from_u32(scalar) {
                            Some(c) => out.push(c),
                            None => return err("invalid \\u escape", *pos),
                        }
                    }
                    _ => return err("invalid escape", *pos),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // byte stream is valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid utf8");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err("expected `,` or `]` in array", *pos),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return err("expected string key", *pos);
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return err("expected `:` after key", *pos);
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return err("expected `,` or `}` in object", *pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let text = r#"{"jobs": [{"runs": 500, "seed": 0, "full": false, "name": "b\"os\"", "ratio": -0.25, "extra": null}], "nested": [[1, 2], []]}"#;
        let doc = Json::parse(text).unwrap();
        let again = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(doc, again);
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let text = r#"{"jobs": [{"runs": 500, "name": "b\"os\"", "ratio": -0.25, "x": null}], "nested": [[1, 2], []], "ok": true}"#;
        let doc = Json::parse(text).unwrap();
        let line = doc.compact();
        assert!(!line.contains('\n'));
        assert!(!line.contains(": "), "no decorative whitespace");
        assert_eq!(Json::parse(&line).unwrap(), doc);
        // Canonical: equal documents serialise to equal bytes whatever
        // the insertion order of their keys.
        let a = Json::obj([("b", Json::num(1.0)), ("a", Json::num(2.0))]);
        let b = Json::obj([("a", Json::num(2.0)), ("b", Json::num(1.0))]);
        assert_eq!(a.compact(), b.compact());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = Json::parse(r#""a\tbé\n""#).unwrap();
        assert_eq!(doc, Json::Str("a\tb\u{e9}\n".into()));
    }

    #[test]
    fn parses_surrogate_pairs() {
        // Non-BMP characters escape as UTF-16 surrogate pairs (the form
        // `ensure_ascii` serializers emit).
        let doc = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(doc, Json::Str("😀".into()));
        // Raw (unescaped) non-BMP characters pass through too.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired high");
        assert!(Json::parse(r#""\ud83dA""#).is_err(), "bad low");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low");
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("depth"), "{}", err.message);
        // Sane nesting stays fine.
        assert!(Json::parse(&("[".repeat(100) + &"]".repeat(100))).is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse(r#"{"a": }"#).is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn typed_accessors() {
        let doc = Json::parse(r#"{"n": 3, "s": "x", "b": true, "a": [1], "z": null}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_usize().unwrap(), 3);
        assert_eq!(doc.get("s").unwrap().as_str().unwrap(), "x");
        assert!(doc.get("b").unwrap().as_bool().unwrap());
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.opt("z").is_none());
        assert!(doc.opt("missing").is_none());
        assert!(doc.get("missing").is_err());
        assert!(doc.get("s").unwrap().as_f64().is_err());
        assert!(Json::Num(1.5).as_usize().is_err());
        assert!(Json::Num(-1.0).as_usize().is_err());
    }

    #[test]
    fn number_formatting_is_integral_when_exact() {
        assert_eq!(Json::Num(5000.0).pretty().trim(), "5000");
        assert_eq!(Json::Num(0.25).pretty().trim(), "0.25");
        assert_eq!(Json::Num(f64::INFINITY).pretty().trim(), "null");
    }

    #[test]
    fn uint_round_trips_past_the_f64_precision_cliff() {
        // 2^53 + 1 is the first integer an f64 cannot represent.
        let cliff = (1u64 << 53) + 1;
        for v in [cliff, u64::MAX - 1, u64::MAX] {
            let doc = Json::uint(v);
            assert_eq!(doc.compact(), v.to_string());
            let back = Json::parse(&doc.compact()).unwrap();
            assert_eq!(back.as_u64().unwrap(), v, "exact round trip");
            assert!(matches!(back, Json::Uint(_)));
        }
        // Below the cliff the parser keeps producing Num, as before.
        assert!(matches!(Json::parse("5000").unwrap(), Json::Num(_)));
        // Signed/fractional/exponent forms never take the Uint path.
        assert!(matches!(Json::parse("-5").unwrap(), Json::Num(_)));
        assert!(matches!(Json::parse("1e300").unwrap(), Json::Num(_)));
    }

    #[test]
    fn uint_and_num_compare_by_value() {
        assert_eq!(Json::uint(5000), Json::num(5000.0));
        assert_eq!(Json::num(0.0), Json::uint(0));
        assert_ne!(Json::uint(5), Json::num(5.5));
        assert_ne!(Json::uint(u64::MAX), Json::num(u64::MAX as f64));
        // Nested: a document using Uint equals its parse (which may
        // demote small values to Num).
        let doc = Json::obj([("hits", Json::uint(42)), ("rate", Json::num(0.5))]);
        assert_eq!(Json::parse(&doc.compact()).unwrap(), doc);
    }

    #[test]
    fn expect_keys_names_the_offending_key() {
        let doc = Json::parse(r#"{"runs": 3, "iteratons": 5}"#).unwrap();
        let err = doc.expect_keys("job", &["runs", "iterations"]).unwrap_err();
        assert!(err.message.contains("`iteratons`"), "{}", err.message);
        assert!(err.message.contains("job"), "{}", err.message);
        assert!(doc.expect_keys("job", &["runs", "iteratons"]).is_ok());
        // Non-objects pass: their shape errors come from the accessors.
        assert!(Json::num(1.0).expect_keys("job", &[]).is_ok());
    }

    #[test]
    fn uint_accessors_are_exact() {
        let big = Json::uint((1u64 << 60) + 7);
        assert_eq!(big.as_u64().unwrap(), (1u64 << 60) + 7);
        assert_eq!(big.as_usize().unwrap(), (1usize << 60) + 7);
        assert_eq!(big.as_f64().unwrap(), ((1u64 << 60) + 7) as f64);
        // A Num past 2^53 still refuses integer reads (ambiguous),
        // while a Uint there is exact.
        assert!(Json::num(((1u64 << 53) + 2) as f64).as_u64().is_err());
        assert_eq!(
            Json::uint((1u64 << 53) + 2).as_u64().unwrap(),
            (1u64 << 53) + 2
        );
    }
}
