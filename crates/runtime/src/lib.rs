//! # cnash-runtime: parallel portfolio-solving runtime
//!
//! The paper's evaluation (Table 1, Figs. 8–10) aggregates thousands of
//! independent seeded solver runs per (game, solver) pair. This crate
//! turns that embarrassingly parallel loop into a batch execution
//! subsystem:
//!
//! * [`pool`] — a self-scheduling worker pool delivering results in
//!   **index order**, the substrate for deterministic aggregation and
//!   cancellation broadcast;
//! * [`batch`] — [`BatchRunner`], the parallel
//!   `cnash_core::ExperimentRunner`: deterministic seed assignment
//!   (run `k` always gets `base_seed + k`), streaming fold into
//!   `GameReport` statistics, and verified [`EarlyStop`] conditions;
//! * [`portfolio`] — [`PortfolioRunner`] races solver variants and
//!   broadcasts cancellation once one reaches its target;
//! * [`spec`] / [`json`] — a serializable instance library: games,
//!   solver configs and job files as JSON, plus machine-readable
//!   reports ([`report`]).
//!
//! ## Determinism contract
//!
//! For a fixed `(runs, base_seed, early_stop)`, a batch produces a
//! **bit-identical** `GameReport` at any thread count: seeds are
//! assigned by run index, outcomes are folded in index order, and
//! early-stop is decided on the folded prefix only. Early stop never
//! fires on an unverified solution — the runtime re-checks every
//! claimed equilibrium against the game in exact arithmetic.
//!
//! ## Quickstart
//!
//! ```
//! use cnash_core::{CNashConfig, CNashSolver};
//! use cnash_game::{games, support_enum::enumerate_equilibria};
//! use cnash_runtime::{BatchRunner, EarlyStop};
//!
//! let game = games::battle_of_the_sexes();
//! let truth = enumerate_equilibria(&game, 1e-9);
//! let solver =
//!     CNashSolver::new(&game, CNashConfig::ideal(12).with_iterations(2000), 0).unwrap();
//!
//! let batch = BatchRunner::new(100, 0)
//!     .threads(0) // all cores
//!     .early_stop(EarlyStop::Coverage(2))
//!     .evaluate(&solver, &truth);
//!
//! assert!(batch.report.covered >= 2);
//! assert!(batch.executed_runs <= batch.scheduled_runs);
//! ```

pub mod batch;
pub mod json;
pub mod pool;
pub mod portfolio;
pub mod report;
pub mod spec;

pub use batch::{BatchReport, BatchRunner, EarlyStop};
pub use json::{Json, JsonError};
pub use pool::{CancelToken, WorkQueue};
pub use portfolio::{
    PortfolioJob, PortfolioJobResult, PortfolioOutcome, PortfolioRunner, PortfolioStop,
};
pub use spec::{BatchSpec, ConfigSpec, GameSpec, JobSpec, SolverSpec, SpecError};
