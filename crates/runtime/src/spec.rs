//! Serializable instance library: games, solver configurations and job
//! specs as JSON documents.
//!
//! Batches can be described in a JSON *jobs file*, loaded with
//! [`BatchSpec::from_json`], executed on the [`crate::PortfolioRunner`],
//! and dumped back out as machine-readable reports — the interchange
//! format a server frontend or experiment-management tooling would
//! speak. Example jobs file:
//!
//! ```json
//! {
//!   "threads": 8,
//!   "mode": "portfolio",
//!   "jobs": [
//!     {
//!       "game": {"builtin": "battle_of_the_sexes"},
//!       "solver": {"type": "cnash", "preset": "paper", "intervals": 12,
//!                  "iterations": 2000, "hardware_seed": 0},
//!       "runs": 500,
//!       "base_seed": 0,
//!       "early_stop": {"successes": 1}
//!     }
//!   ]
//! }
//! ```

use crate::batch::EarlyStop;
use crate::json::{Json, JsonError};
use crate::portfolio::{PortfolioJob, PortfolioStop};
use cnash_core::baselines::DWaveNashSolver;
use cnash_core::{CNashConfig, CNashSolver, CfrConfig, CfrSolver, IdealSolver, NashSolver};
use cnash_device::corners::ProcessCorner;
use cnash_game::families::Family;
use cnash_game::games;
use cnash_game::generators;
use cnash_game::library;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::{BimatrixGame, Matrix};
use cnash_qubo::dwave::DWaveModel;
use std::fmt;

/// Error constructing domain objects from specs (or parsing their JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError {
            message: e.to_string(),
        }
    }
}

fn spec_err<T>(message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        message: message.into(),
    })
}

/// Encodes a 64-bit seed losslessly: as a JSON number when exactly
/// representable in an `f64`, as a decimal string above 2^53.
fn seed_to_json(v: u64) -> Json {
    if v <= (1u64 << 53) {
        Json::num(v as f64)
    } else {
        Json::str(v.to_string())
    }
}

/// Decodes a seed written by [`seed_to_json`] (number or string form).
fn seed_from_json(json: &Json) -> Result<u64, SpecError> {
    match json {
        Json::Str(s) => s.parse::<u64>().map_err(|_| SpecError {
            message: format!("invalid seed `{s}`"),
        }),
        other => Ok(other.as_u64()?),
    }
}

/// Upper bound on `rows × cols` of a [`GameSpec::Random`] instance
/// (1M cells ≈ 16 MB of payoffs): specs arrive over the wire, and one
/// request must not be able to demand an unbounded allocation.
pub(crate) const MAX_RANDOM_CELLS: usize = 1 << 20;

/// A named entry of the builtin game registry.
pub type BuiltinGame = (&'static str, fn() -> BimatrixGame);

/// The games addressable by name in jobs files.
///
/// Covers the paper's three benchmarks plus the extended library.
pub fn builtin_games() -> Vec<BuiltinGame> {
    vec![
        ("battle_of_the_sexes", games::battle_of_the_sexes),
        ("bird_game", games::bird_game),
        (
            "modified_prisoners_dilemma",
            games::modified_prisoners_dilemma,
        ),
        ("prisoners_dilemma", games::prisoners_dilemma),
        ("matching_pennies", games::matching_pennies),
        ("rock_paper_scissors", games::rock_paper_scissors),
        ("stag_hunt", games::stag_hunt),
        ("hawk_dove", games::hawk_dove),
        ("chicken", library::chicken),
        ("inspection_game", library::inspection_game),
        ("travelers_dilemma_mini", library::travelers_dilemma_mini),
        ("public_goods_binary", library::public_goods_binary),
        (
            "asymmetric_matching_pennies",
            library::asymmetric_matching_pennies,
        ),
        ("deadlock", library::deadlock),
    ]
}

/// A (de)serializable description of a [`BimatrixGame`].
#[derive(Debug, Clone, PartialEq)]
pub enum GameSpec {
    /// A named game from [`builtin_games`].
    Builtin(String),
    /// Explicit payoff matrices.
    Explicit {
        /// Game name (reports).
        name: String,
        /// Row player's payoffs, row-major.
        row_payoffs: Vec<Vec<f64>>,
        /// Column player's payoffs, row-major.
        col_payoffs: Vec<Vec<f64>>,
    },
    /// A seeded random integer game
    /// (`cnash_game::generators::random_integer_game`) — lets jobs files
    /// and service requests name large scaling instances without
    /// shipping `rows × cols` payoff matrices over the wire. The same
    /// `(rows, cols, max_payoff, seed)` always builds the same game, so
    /// instance caches treat it like any other spec form.
    Random {
        /// Row-player actions.
        rows: usize,
        /// Column-player actions.
        cols: usize,
        /// Payoffs are drawn uniformly from `0..=max_payoff`.
        max_payoff: u32,
        /// Generator seed.
        seed: u64,
    },
    /// A structured game-family instance
    /// (`cnash_game::families::Family`) — the GAMUT-style generators
    /// the differential-fuzz harness sweeps. Like [`GameSpec::Random`],
    /// the same `(family, rows, cols, scale, knob, seed)` tuple always
    /// builds the same game, so family instances are first-class
    /// citizens of jobs files, the service protocol and the instance
    /// cache (keys are canonical payoff fingerprints, so a family
    /// instance and the equivalent explicit matrices share a cache
    /// line).
    Family {
        /// Family wire name (`congestion`, `dominance_solvable`,
        /// `covariant`, `sparse`, `degenerate`, `anti_coordination`).
        family: String,
        /// Actions per player when no per-dimension override is given.
        size: usize,
        /// Row-player action count override (`None` = `size`). With
        /// `rows == cols == size` the instance is bit-identical to the
        /// square spec — the generators' draw order is part of the
        /// wire-format contract.
        rows: Option<usize>,
        /// Column-player action count override (`None` = `size`).
        cols: Option<usize>,
        /// Payoff scale (`None` = family default).
        scale: Option<u32>,
        /// Family-specific knob, e.g. correlation ρ percent for
        /// `covariant` (`None` = family default).
        knob: Option<i64>,
        /// Generator seed.
        seed: u64,
    },
}

impl GameSpec {
    /// Captures an existing game as an explicit spec.
    pub fn from_game(game: &BimatrixGame) -> GameSpec {
        let to_rows = |m: &Matrix| (0..m.rows()).map(|i| m.row(i).to_vec()).collect::<Vec<_>>();
        GameSpec::Explicit {
            name: game.name().to_string(),
            row_payoffs: to_rows(game.row_payoffs()),
            col_payoffs: to_rows(game.col_payoffs()),
        }
    }

    /// Instantiates the game.
    ///
    /// # Errors
    ///
    /// Errors on unknown builtin names or malformed matrices.
    pub fn build(&self) -> Result<BimatrixGame, SpecError> {
        match self {
            GameSpec::Builtin(name) => builtin_games()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, f)| f())
                .ok_or(())
                .or_else(|()| spec_err(format!("unknown builtin game `{name}`"))),
            GameSpec::Explicit {
                name,
                row_payoffs,
                col_payoffs,
            } => {
                let m = Matrix::from_rows(row_payoffs).map_err(|e| SpecError {
                    message: format!("row_payoffs: {e}"),
                })?;
                let n = Matrix::from_rows(col_payoffs).map_err(|e| SpecError {
                    message: format!("col_payoffs: {e}"),
                })?;
                BimatrixGame::new(name.clone(), m, n).map_err(|e| SpecError {
                    message: format!("game `{name}`: {e}"),
                })
            }
            GameSpec::Random {
                rows,
                cols,
                max_payoff,
                seed,
            } => {
                // Specs arrive over the wire: bound the allocation
                // before the generator materialises two rows×cols
                // matrices (and before rows*cols could overflow).
                if rows.checked_mul(*cols).is_none_or(|c| c > MAX_RANDOM_CELLS) {
                    return spec_err(format!(
                        "random game: {rows}x{cols} exceeds the {MAX_RANDOM_CELLS}-cell limit"
                    ));
                }
                generators::random_integer_game(*rows, *cols, *max_payoff, *seed).map_err(|e| {
                    SpecError {
                        message: format!("random game: {e}"),
                    }
                })
            }
            GameSpec::Family {
                family,
                size,
                rows,
                cols,
                scale,
                knob,
                seed,
            } => {
                let fam = Family::from_name(family)
                    .ok_or(())
                    .or_else(|()| spec_err(format!("unknown game family `{family}`")))?;
                let rows = rows.unwrap_or(*size);
                let cols = cols.unwrap_or(*size);
                // Same wire-facing allocation bound as Random specs.
                if rows.checked_mul(cols).is_none_or(|c| c > MAX_RANDOM_CELLS) {
                    return spec_err(format!(
                        "family game: {rows}x{cols} exceeds the {MAX_RANDOM_CELLS}-cell limit"
                    ));
                }
                fam.build_rect(
                    rows,
                    cols,
                    scale.unwrap_or_else(|| fam.default_scale()),
                    knob.unwrap_or_else(|| fam.default_knob()),
                    *seed,
                )
                .map_err(|e| SpecError {
                    message: format!("family game `{family}`: {e}"),
                })
            }
        }
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> Json {
        match self {
            GameSpec::Builtin(name) => Json::obj([("builtin", Json::str(name.clone()))]),
            GameSpec::Explicit {
                name,
                row_payoffs,
                col_payoffs,
            } => {
                let mat = |rows: &Vec<Vec<f64>>| {
                    Json::Arr(
                        rows.iter()
                            .map(|r| Json::Arr(r.iter().map(|&v| Json::Num(v)).collect()))
                            .collect(),
                    )
                };
                Json::obj([
                    ("name", Json::str(name.clone())),
                    ("row_payoffs", mat(row_payoffs)),
                    ("col_payoffs", mat(col_payoffs)),
                ])
            }
            GameSpec::Random {
                rows,
                cols,
                max_payoff,
                seed,
            } => Json::obj([(
                "random",
                Json::obj([
                    ("rows", Json::num(*rows as f64)),
                    ("cols", Json::num(*cols as f64)),
                    ("max_payoff", Json::num(*max_payoff)),
                    ("seed", seed_to_json(*seed)),
                ]),
            )]),
            GameSpec::Family {
                family,
                size,
                rows,
                cols,
                scale,
                knob,
                seed,
            } => {
                let mut obj = vec![
                    ("name".to_string(), Json::str(family.clone())),
                    ("size".to_string(), Json::num(*size as f64)),
                ];
                if let Some(r) = rows {
                    obj.push(("rows".into(), Json::num(*r as f64)));
                }
                if let Some(c) = cols {
                    obj.push(("cols".into(), Json::num(*c as f64)));
                }
                if let Some(s) = scale {
                    obj.push(("scale".into(), Json::num(*s)));
                }
                if let Some(k) = knob {
                    obj.push(("knob".into(), Json::num(*k as f64)));
                }
                obj.push(("seed".into(), seed_to_json(*seed)));
                Json::obj([("family", Json::Obj(obj.into_iter().collect()))])
            }
        }
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Errors on missing keys, wrong node types, or unknown keys (the
    /// error names the offending key — a typo must not silently become
    /// a default).
    pub fn from_json(json: &Json) -> Result<GameSpec, SpecError> {
        if let Some(builtin) = json.opt("builtin") {
            json.expect_keys("builtin game spec", &["builtin"])?;
            return Ok(GameSpec::Builtin(builtin.as_str()?.to_string()));
        }
        if let Some(family) = json.opt("family") {
            json.expect_keys("family game spec", &["family"])?;
            family.expect_keys(
                "family game spec",
                &["name", "size", "rows", "cols", "scale", "knob", "seed"],
            )?;
            let scale = match family.opt("scale") {
                None => None,
                Some(v) => {
                    let s = v.as_usize()?;
                    if s > u32::MAX as usize {
                        return spec_err(format!("family game: scale {s} exceeds {}", u32::MAX));
                    }
                    Some(s as u32)
                }
            };
            let knob = match family.opt("knob") {
                None => None,
                Some(v) => {
                    let raw = v.as_f64()?;
                    if raw.fract() != 0.0 {
                        return spec_err(format!("family game: knob {raw} is not an integer"));
                    }
                    // `i64::MAX as f64` rounds up to exactly 2^63, so
                    // `>=` (not `>`) is what excludes the values whose
                    // `as i64` cast would saturate.
                    if raw >= i64::MAX as f64 || raw < i64::MIN as f64 {
                        return spec_err(format!("family game: knob {raw} is out of range"));
                    }
                    Some(raw as i64)
                }
            };
            return Ok(GameSpec::Family {
                family: family.get("name")?.as_str()?.to_string(),
                size: family.get("size")?.as_usize()?,
                rows: family.opt("rows").map(|v| v.as_usize()).transpose()?,
                cols: family.opt("cols").map(|v| v.as_usize()).transpose()?,
                scale,
                knob,
                seed: family
                    .opt("seed")
                    .map(seed_from_json)
                    .transpose()?
                    .unwrap_or(0),
            });
        }
        if let Some(random) = json.opt("random") {
            json.expect_keys("random game spec", &["random"])?;
            random.expect_keys("random game spec", &["rows", "cols", "max_payoff", "seed"])?;
            let max_payoff = random.get("max_payoff")?.as_usize()?;
            if max_payoff > u32::MAX as usize {
                return spec_err(format!(
                    "random game: max_payoff {max_payoff} exceeds {}",
                    u32::MAX
                ));
            }
            return Ok(GameSpec::Random {
                rows: random.get("rows")?.as_usize()?,
                cols: random.get("cols")?.as_usize()?,
                max_payoff: max_payoff as u32,
                seed: random
                    .opt("seed")
                    .map(seed_from_json)
                    .transpose()?
                    .unwrap_or(0),
            });
        }
        json.expect_keys(
            "explicit game spec",
            &["name", "row_payoffs", "col_payoffs"],
        )?;
        let mat = |key: &str| -> Result<Vec<Vec<f64>>, SpecError> {
            json.get(key)?
                .as_arr()?
                .iter()
                .map(|row| {
                    row.as_arr()?
                        .iter()
                        .map(|v| Ok(v.as_f64()?))
                        .collect::<Result<Vec<f64>, SpecError>>()
                })
                .collect()
        };
        Ok(GameSpec::Explicit {
            name: json.get("name")?.as_str()?.to_string(),
            row_payoffs: mat("row_payoffs")?,
            col_payoffs: mat("col_payoffs")?,
        })
    }
}

/// A (de)serializable description of a [`CNashConfig`].
///
/// Hardware sub-models (crossbar, WTA trees) ride on the named preset —
/// `"ideal"` or `"paper"`, optionally at a process `corner` — with the
/// algorithmic knobs overridable individually.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpec {
    /// `"ideal"` or `"paper"`.
    pub preset: String,
    /// Probability grid intervals.
    pub intervals: u32,
    /// Process corner (paper preset only), e.g. `"tt"`, `"snfp"`.
    pub corner: Option<String>,
    /// SA iterations per run.
    pub iterations: Option<usize>,
    /// Measured-gap hit threshold.
    pub gap_tolerance: Option<f64>,
    /// Route Phase-1 maxima through the WTA model.
    pub use_wta: Option<bool>,
}

impl ConfigSpec {
    /// Spec for the paper's hardware at `intervals` grid intervals.
    pub fn paper(intervals: u32) -> Self {
        Self {
            preset: "paper".into(),
            intervals,
            corner: None,
            iterations: None,
            gap_tolerance: None,
            use_wta: None,
        }
    }

    /// Spec for the idealised pipeline at `intervals` grid intervals.
    pub fn ideal(intervals: u32) -> Self {
        Self {
            preset: "ideal".into(),
            ..Self::paper(intervals)
        }
    }

    /// Returns a copy with an iteration budget override.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Builds the concrete configuration.
    ///
    /// # Errors
    ///
    /// Errors on unknown presets or corners.
    pub fn build(&self) -> Result<CNashConfig, SpecError> {
        let corner = match &self.corner {
            None => None,
            Some(name) => Some(
                ProcessCorner::ALL
                    .into_iter()
                    .find(|c| c.to_string() == *name)
                    .ok_or(())
                    .or_else(|()| spec_err(format!("unknown process corner `{name}`")))?,
            ),
        };
        let mut config = match (self.preset.as_str(), corner) {
            ("ideal", None) => CNashConfig::ideal(self.intervals),
            ("ideal", Some(_)) => return spec_err("the ideal preset has no process corners"),
            ("paper", None) => CNashConfig::paper(self.intervals),
            ("paper", Some(c)) => CNashConfig::paper_at_corner(self.intervals, c),
            (other, _) => return spec_err(format!("unknown preset `{other}`")),
        };
        if let Some(iterations) = self.iterations {
            config.iterations = iterations;
        }
        if let Some(gap) = self.gap_tolerance {
            config.gap_tolerance = gap;
        }
        if let Some(use_wta) = self.use_wta {
            config.use_wta = use_wta;
        }
        Ok(config)
    }

    /// Serialises to JSON (only the explicitly set overrides).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("preset".to_string(), Json::str(self.preset.clone())),
            ("intervals".to_string(), Json::num(self.intervals)),
        ];
        if let Some(c) = &self.corner {
            obj.push(("corner".into(), Json::str(c.clone())));
        }
        if let Some(i) = self.iterations {
            obj.push(("iterations".into(), Json::num(i as f64)));
        }
        if let Some(g) = self.gap_tolerance {
            obj.push(("gap_tolerance".into(), Json::num(g)));
        }
        if let Some(w) = self.use_wta {
            obj.push(("use_wta".into(), Json::Bool(w)));
        }
        Json::Obj(obj.into_iter().collect())
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Errors on missing keys or wrong node types.
    pub fn from_json(json: &Json) -> Result<ConfigSpec, SpecError> {
        Ok(ConfigSpec {
            preset: json.get("preset")?.as_str()?.to_string(),
            intervals: json.get("intervals")?.as_usize()? as u32,
            corner: json
                .opt("corner")
                .map(|c| Ok::<_, SpecError>(c.as_str()?.to_string()))
                .transpose()?,
            iterations: json.opt("iterations").map(|v| v.as_usize()).transpose()?,
            gap_tolerance: json.opt("gap_tolerance").map(|v| v.as_f64()).transpose()?,
            use_wta: json.opt("use_wta").map(|v| v.as_bool()).transpose()?,
        })
    }
}

/// A (de)serializable description of a solver variant.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverSpec {
    /// The full C-Nash architecture on a silicon instance.
    CNash {
        /// Solver configuration.
        config: ConfigSpec,
        /// Silicon instance seed (device variability, WTA mismatch).
        hardware_seed: u64,
    },
    /// The exact-arithmetic ablation.
    Ideal {
        /// Solver configuration.
        config: ConfigSpec,
    },
    /// The S-QUBO baseline on an emulated D-Wave annealer.
    DWave {
        /// `"2000q"` or `"advantage4.1"`.
        model: String,
        /// Annealer reads per run.
        reads_per_run: usize,
    },
    /// The classical external-sampling CFR baseline
    /// (`cnash_core::CfrSolver`) — the first solver running against the
    /// generic `cnash_game::Game` trait rather than a bimatrix view.
    Cfr {
        /// External-sampling iterations per run.
        iterations: usize,
    },
}

impl SolverSpec {
    /// Builds the concrete solver for `game`.
    ///
    /// # Errors
    ///
    /// Errors if the spec is invalid or the game cannot be mapped onto
    /// the hardware model.
    pub fn build(&self, game: &BimatrixGame) -> Result<Box<dyn NashSolver>, SpecError> {
        match self {
            SolverSpec::CNash {
                config,
                hardware_seed,
            } => {
                let solver =
                    CNashSolver::new(game, config.build()?, *hardware_seed).map_err(|e| {
                        SpecError {
                            message: format!("cnash: {e}"),
                        }
                    })?;
                Ok(Box::new(solver))
            }
            SolverSpec::Ideal { config } => Ok(Box::new(IdealSolver::new(game, config.build()?))),
            SolverSpec::DWave {
                model,
                reads_per_run,
            } => {
                let model = match model.as_str() {
                    "2000q" => DWaveModel::dwave_2000q(),
                    "advantage4.1" => DWaveModel::advantage_4_1(),
                    other => return spec_err(format!("unknown D-Wave model `{other}`")),
                };
                let solver =
                    DWaveNashSolver::new(game, model, *reads_per_run).map_err(|e| SpecError {
                        message: format!("dwave: {e}"),
                    })?;
                Ok(Box::new(solver))
            }
            SolverSpec::Cfr { iterations } => {
                let solver = CfrSolver::new(Box::new(game.clone()), CfrConfig::new(*iterations))
                    .map_err(|e| SpecError {
                        message: format!("cfr: {e}"),
                    })?;
                Ok(Box::new(solver))
            }
        }
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> Json {
        match self {
            SolverSpec::CNash {
                config,
                hardware_seed,
            } => {
                let mut obj = match config.to_json() {
                    Json::Obj(map) => map,
                    _ => unreachable!("ConfigSpec::to_json returns an object"),
                };
                obj.insert("type".into(), Json::str("cnash"));
                obj.insert("hardware_seed".into(), seed_to_json(*hardware_seed));
                Json::Obj(obj)
            }
            SolverSpec::Ideal { config } => {
                let mut obj = match config.to_json() {
                    Json::Obj(map) => map,
                    _ => unreachable!("ConfigSpec::to_json returns an object"),
                };
                obj.insert("type".into(), Json::str("ideal"));
                Json::Obj(obj)
            }
            SolverSpec::DWave {
                model,
                reads_per_run,
            } => Json::obj([
                ("type", Json::str("dwave")),
                ("model", Json::str(model.clone())),
                ("reads_per_run", Json::num(*reads_per_run as f64)),
            ]),
            SolverSpec::Cfr { iterations } => Json::obj([
                ("type", Json::str("cfr")),
                ("iterations", Json::num(*iterations as f64)),
            ]),
        }
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Errors on unknown solver types, malformed fields, or unknown
    /// keys (validated per variant, since the `ConfigSpec` fields are
    /// flattened into the same object as the `type` tag).
    pub fn from_json(json: &Json) -> Result<SolverSpec, SpecError> {
        const CONFIG_KEYS: [&str; 6] = [
            "preset",
            "intervals",
            "corner",
            "iterations",
            "gap_tolerance",
            "use_wta",
        ];
        fn with_config<'a>(extra: &[&'a str]) -> Vec<&'a str> {
            let mut keys = vec!["type"];
            keys.extend_from_slice(&CONFIG_KEYS);
            keys.extend_from_slice(extra);
            keys
        }
        match json.get("type")?.as_str()? {
            "cnash" => {
                json.expect_keys("cnash solver spec", &with_config(&["hardware_seed"]))?;
                Ok(SolverSpec::CNash {
                    config: ConfigSpec::from_json(json)?,
                    hardware_seed: json
                        .opt("hardware_seed")
                        .map(seed_from_json)
                        .transpose()?
                        .unwrap_or(0),
                })
            }
            "ideal" => {
                json.expect_keys("ideal solver spec", &with_config(&[]))?;
                Ok(SolverSpec::Ideal {
                    config: ConfigSpec::from_json(json)?,
                })
            }
            "dwave" => {
                json.expect_keys("dwave solver spec", &["type", "model", "reads_per_run"])?;
                Ok(SolverSpec::DWave {
                    model: json.get("model")?.as_str()?.to_string(),
                    reads_per_run: json
                        .opt("reads_per_run")
                        .map(|v| v.as_usize())
                        .transpose()?
                        .unwrap_or(1),
                })
            }
            "cfr" => {
                json.expect_keys("cfr solver spec", &["type", "iterations"])?;
                Ok(SolverSpec::Cfr {
                    iterations: json
                        .opt("iterations")
                        .map(|v| v.as_usize())
                        .transpose()?
                        .unwrap_or_else(|| CfrConfig::default().iterations),
                })
            }
            other => spec_err(format!("unknown solver type `{other}`")),
        }
    }

    /// A short display label for reports.
    pub fn label(&self) -> String {
        match self {
            SolverSpec::CNash { hardware_seed, .. } => format!("cnash(hw{hardware_seed})"),
            SolverSpec::Ideal { .. } => "ideal".to_string(),
            SolverSpec::DWave { model, .. } => format!("dwave({model})"),
            SolverSpec::Cfr { .. } => "cfr".to_string(),
        }
    }
}

/// A (de)serializable batch job: `(game, solver-config, run-budget)`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The instance to solve.
    pub game: GameSpec,
    /// The solver variant to run.
    pub solver: SolverSpec,
    /// Independent runs scheduled.
    pub runs: usize,
    /// First seed of the batch.
    pub base_seed: u64,
    /// Optional early-stop condition.
    pub early_stop: Option<EarlyStop>,
    /// Optional display label (defaults to solver + game).
    pub label: Option<String>,
}

impl JobSpec {
    /// Prepares the job for the portfolio runner: builds the game and
    /// solver and enumerates the ground-truth equilibria.
    ///
    /// # Errors
    ///
    /// Errors if the game or solver cannot be built.
    pub fn prepare(&self) -> Result<PortfolioJob, SpecError> {
        let game = self.game.build()?;
        let solver = self.solver.build(&game)?;
        let ground_truth = enumerate_equilibria(&game, 1e-9);
        let label = self
            .label
            .clone()
            .unwrap_or_else(|| format!("{} on {}", self.solver.label(), game.name()));
        Ok(PortfolioJob {
            label,
            solver,
            ground_truth,
            runs: self.runs,
            base_seed: self.base_seed,
            early_stop: self.early_stop,
        })
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("game".to_string(), self.game.to_json()),
            ("solver".to_string(), self.solver.to_json()),
            ("runs".to_string(), Json::num(self.runs as f64)),
            ("base_seed".to_string(), seed_to_json(self.base_seed)),
        ];
        match self.early_stop {
            Some(EarlyStop::Successes(n)) => obj.push((
                "early_stop".into(),
                Json::obj([("successes", Json::num(n as f64))]),
            )),
            Some(EarlyStop::Coverage(n)) => obj.push((
                "early_stop".into(),
                Json::obj([("coverage", Json::num(n as f64))]),
            )),
            None => {}
        }
        if let Some(label) = &self.label {
            obj.push(("label".into(), Json::str(label.clone())));
        }
        Json::Obj(obj.into_iter().collect())
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Errors on missing keys, malformed fields, or unknown keys.
    pub fn from_json(json: &Json) -> Result<JobSpec, SpecError> {
        json.expect_keys(
            "job spec",
            &["game", "solver", "runs", "base_seed", "early_stop", "label"],
        )?;
        let early_stop = match json.opt("early_stop") {
            None => None,
            Some(stop) => {
                stop.expect_keys("early_stop", &["successes", "coverage"])?;
                if let Some(n) = stop.opt("successes") {
                    Some(EarlyStop::Successes(n.as_usize()?))
                } else if let Some(n) = stop.opt("coverage") {
                    Some(EarlyStop::Coverage(n.as_usize()?))
                } else {
                    return spec_err("early_stop needs `successes` or `coverage`");
                }
            }
        };
        let runs = json.get("runs")?.as_usize()?;
        if runs == 0 {
            return spec_err("runs must be positive");
        }
        Ok(JobSpec {
            game: GameSpec::from_json(json.get("game")?)?,
            solver: SolverSpec::from_json(json.get("solver")?)?,
            runs,
            base_seed: json
                .opt("base_seed")
                .map(seed_from_json)
                .transpose()?
                .unwrap_or(0),
            early_stop,
            label: json
                .opt("label")
                .map(|v| Ok::<_, SpecError>(v.as_str()?.to_string()))
                .transpose()?,
        })
    }
}

/// A whole jobs file: jobs plus execution policy.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpec {
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
    /// `FirstTarget` (portfolio) or `Independent` execution.
    pub stop: PortfolioStop,
    /// Worker threads (`0`/absent = all cores).
    pub threads: usize,
}

impl BatchSpec {
    /// Parses a jobs file.
    ///
    /// # Errors
    ///
    /// Errors on malformed JSON, invalid job specs, or unknown keys.
    pub fn from_json(text: &str) -> Result<BatchSpec, SpecError> {
        let doc = Json::parse(text)?;
        doc.expect_keys("jobs file", &["jobs", "mode", "threads"])?;
        let jobs = doc
            .get("jobs")?
            .as_arr()?
            .iter()
            .map(JobSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if jobs.is_empty() {
            return spec_err("jobs file contains no jobs");
        }
        let stop = match doc.opt("mode").map(|m| m.as_str()).transpose()? {
            None | Some("portfolio") => PortfolioStop::FirstTarget,
            Some("independent") => PortfolioStop::Independent,
            Some(other) => return spec_err(format!("unknown mode `{other}`")),
        };
        Ok(BatchSpec {
            jobs,
            stop,
            threads: doc
                .opt("threads")
                .map(|v| v.as_usize())
                .transpose()?
                .unwrap_or(0),
        })
    }

    /// Serialises the jobs file.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "mode",
                Json::str(match self.stop {
                    PortfolioStop::FirstTarget => "portfolio",
                    PortfolioStop::Independent => "independent",
                }),
            ),
            ("threads", Json::num(self.threads as f64)),
            (
                "jobs",
                Json::Arr(self.jobs.iter().map(JobSpec::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job() -> JobSpec {
        JobSpec {
            game: GameSpec::Builtin("battle_of_the_sexes".into()),
            solver: SolverSpec::CNash {
                config: ConfigSpec::ideal(12).with_iterations(2000),
                hardware_seed: 3,
            },
            runs: 25,
            base_seed: 7,
            early_stop: Some(EarlyStop::Successes(2)),
            label: None,
        }
    }

    #[test]
    fn job_spec_round_trips_through_json() {
        let spec = BatchSpec {
            jobs: vec![sample_job()],
            stop: PortfolioStop::FirstTarget,
            threads: 4,
        };
        let text = spec.to_json().pretty();
        let again = BatchSpec::from_json(&text).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn explicit_game_round_trips_and_builds() {
        let game = games::matching_pennies();
        let spec = GameSpec::from_game(&game);
        let again = GameSpec::from_json(&Json::parse(&spec.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(spec, again);
        let rebuilt = again.build().unwrap();
        assert_eq!(rebuilt, game);
    }

    #[test]
    fn random_game_spec_round_trips_and_builds_deterministically() {
        let spec = GameSpec::Random {
            rows: 6,
            cols: 4,
            max_payoff: 3,
            seed: 11,
        };
        let again = GameSpec::from_json(&Json::parse(&spec.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(again, spec);
        let a = spec.build().unwrap();
        let b = again.build().unwrap();
        assert_eq!(a, b, "same spec must build the same game");
        assert_eq!((a.row_actions(), a.col_actions()), (6, 4));
        assert!(GameSpec::Random {
            rows: 0,
            cols: 4,
            max_payoff: 3,
            seed: 0
        }
        .build()
        .is_err());
        // Wire-facing bounds: oversized grids (including rows*cols
        // overflow) and out-of-range payoff scales are rejected loudly.
        assert!(GameSpec::Random {
            rows: usize::MAX,
            cols: usize::MAX,
            max_payoff: 3,
            seed: 0
        }
        .build()
        .is_err());
        assert!(GameSpec::Random {
            rows: 2048,
            cols: 2048,
            max_payoff: 3,
            seed: 0
        }
        .build()
        .is_err());
        let oversized = r#"{"random": {"rows": 2, "cols": 2, "max_payoff": 4294967299}}"#;
        assert!(GameSpec::from_json(&Json::parse(oversized).unwrap()).is_err());
    }

    #[test]
    fn family_spec_round_trips_and_builds_deterministically() {
        use cnash_game::families::Family;
        // Defaults elided on the wire round-trip as `None`.
        let minimal = GameSpec::Family {
            family: "covariant".into(),
            size: 3,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed: 9,
        };
        let again =
            GameSpec::from_json(&Json::parse(&minimal.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(again, minimal);
        assert_eq!(minimal.build().unwrap(), again.build().unwrap());

        // Explicit scale and a negative knob survive the wire.
        let full = GameSpec::Family {
            family: "covariant".into(),
            size: 4,
            rows: None,
            cols: None,
            scale: Some(8),
            knob: Some(-75),
            seed: 2,
        };
        let text = full.to_json().pretty();
        let again = GameSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(again, full);
        let game = again.build().unwrap();
        assert_eq!((game.row_actions(), game.col_actions()), (4, 4));
        assert!(game.row_payoffs().is_nonneg_integer(1e-9));

        // Every registry family is reachable by wire name.
        for fam in Family::ALL {
            let spec = GameSpec::Family {
                family: fam.name().into(),
                size: 2,
                rows: None,
                cols: None,
                scale: None,
                knob: None,
                seed: 0,
            };
            assert!(spec.build().is_ok(), "{}", fam.name());
        }

        // Unknown names, oversized grids and bad knobs fail loudly.
        assert!(GameSpec::Family {
            family: "quantum_chess".into(),
            size: 2,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed: 0,
        }
        .build()
        .is_err());
        assert!(GameSpec::Family {
            family: "sparse".into(),
            size: 2048,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed: 0,
        }
        .build()
        .is_err());
        assert!(GameSpec::Family {
            family: "covariant".into(),
            size: 3,
            rows: None,
            cols: None,
            scale: Some(6),
            knob: Some(250),
            seed: 0,
        }
        .build()
        .is_err());
        let fractional = r#"{"family": {"name": "sparse", "size": 2, "knob": 0.5}}"#;
        assert!(GameSpec::from_json(&Json::parse(fractional).unwrap()).is_err());
        // Integral but out-of-i64-range knobs get a range error (not a
        // bogus "not an integer"), and 2^63 exactly must not saturate.
        for bad in [
            r#"{"family": {"name": "sparse", "size": 2, "knob": 1e300}}"#,
            r#"{"family": {"name": "sparse", "size": 2, "knob": 9223372036854775808}}"#,
        ] {
            let err = GameSpec::from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert!(err.message.contains("out of range"), "{}", err.message);
        }
        // Oversized scales are rejected by the family itself.
        assert!(GameSpec::Family {
            family: "dominance_solvable".into(),
            size: 3,
            rows: None,
            cols: None,
            scale: Some(u32::MAX),
            knob: None,
            seed: 0,
        }
        .build()
        .is_err());
    }

    #[test]
    fn builtin_registry_builds_every_game() {
        for (name, _) in builtin_games() {
            let game = GameSpec::Builtin(name.to_string()).build().unwrap();
            assert!(game.row_actions() > 0);
        }
    }

    #[test]
    fn config_spec_matches_presets() {
        assert_eq!(
            ConfigSpec::ideal(12).build().unwrap(),
            CNashConfig::ideal(12)
        );
        assert_eq!(
            ConfigSpec::paper(12).build().unwrap(),
            CNashConfig::paper(12)
        );
        let spec = ConfigSpec {
            corner: Some("snfp".into()),
            iterations: Some(777),
            ..ConfigSpec::paper(12)
        };
        let config = spec.build().unwrap();
        assert_eq!(config.iterations, 777);
        assert_eq!(
            config.wta.effective_offset(),
            CNashConfig::paper_at_corner(12, ProcessCorner::Snfp)
                .wta
                .effective_offset()
        );
    }

    #[test]
    fn solver_specs_build_and_run() {
        let game = games::battle_of_the_sexes();
        let specs = [
            SolverSpec::CNash {
                config: ConfigSpec::ideal(12).with_iterations(1000),
                hardware_seed: 0,
            },
            SolverSpec::Ideal {
                config: ConfigSpec::ideal(12).with_iterations(1000),
            },
            SolverSpec::DWave {
                model: "2000q".into(),
                reads_per_run: 1,
            },
            SolverSpec::DWave {
                model: "advantage4.1".into(),
                reads_per_run: 2,
            },
            SolverSpec::Cfr { iterations: 500 },
        ];
        for spec in specs {
            let solver = spec.build(&game).unwrap();
            let out = solver.run(1);
            assert!(out.total_time > 0.0);
            let round =
                SolverSpec::from_json(&Json::parse(&spec.to_json().pretty()).unwrap()).unwrap();
            assert_eq!(round, spec);
        }
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(GameSpec::Builtin("no_such_game".into()).build().is_err());
        assert!(ConfigSpec {
            preset: "quantum".into(),
            ..ConfigSpec::ideal(12)
        }
        .build()
        .is_err());
        assert!(ConfigSpec {
            corner: Some("xx".into()),
            ..ConfigSpec::paper(12)
        }
        .build()
        .is_err());
        assert!(SolverSpec::DWave {
            model: "5000q".into(),
            reads_per_run: 1
        }
        .build(&games::battle_of_the_sexes())
        .is_err());
        assert!(BatchSpec::from_json("{\"jobs\": []}").is_err());
        assert!(BatchSpec::from_json("not json").is_err());
        assert!(BatchSpec::from_json(r#"{"jobs": [{"runs": 0}], "mode": "portfolio"}"#).is_err());
    }

    #[test]
    fn seeds_above_f64_precision_round_trip() {
        // Seeds past 2^53 are not exactly representable as JSON numbers;
        // they must survive a round trip losslessly (string encoding).
        let spec = JobSpec {
            base_seed: u64::MAX - 1,
            solver: SolverSpec::CNash {
                config: ConfigSpec::ideal(12),
                hardware_seed: (1 << 53) + 1,
            },
            ..sample_job()
        };
        let text = spec.to_json().pretty();
        let again = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn rectangular_family_spec_round_trips_and_builds() {
        let rect = GameSpec::Family {
            family: "dominance_solvable".into(),
            size: 3,
            rows: Some(5),
            cols: Some(2),
            scale: None,
            knob: None,
            seed: 4,
        };
        let text = rect.to_json().pretty();
        assert!(text.contains("\"rows\""));
        assert!(text.contains("\"cols\""));
        let again = GameSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(again, rect);
        let game = again.build().unwrap();
        assert_eq!((game.row_actions(), game.col_actions()), (5, 2));

        // A square override is bit-identical to the plain square spec —
        // the draw order is part of the wire contract.
        let square = GameSpec::Family {
            family: "congestion".into(),
            size: 3,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed: 8,
        };
        let overridden = GameSpec::Family {
            family: "congestion".into(),
            size: 3,
            rows: Some(3),
            cols: Some(3),
            scale: None,
            knob: None,
            seed: 8,
        };
        assert_eq!(square.build().unwrap(), overridden.build().unwrap());

        // One-sided overrides keep `size` for the other dimension, and
        // the allocation bound applies to the overridden shape.
        let one_sided = GameSpec::Family {
            family: "sparse".into(),
            size: 2,
            rows: Some(4),
            cols: None,
            scale: None,
            knob: None,
            seed: 0,
        };
        let game = one_sided.build().unwrap();
        assert_eq!((game.row_actions(), game.col_actions()), (4, 2));
        assert!(GameSpec::Family {
            family: "sparse".into(),
            size: 2,
            rows: Some(2048),
            cols: Some(2048),
            scale: None,
            knob: None,
            seed: 0,
        }
        .build()
        .is_err());
    }

    #[test]
    fn unknown_keys_are_rejected_naming_the_key() {
        let cases = [
            (r#"{"builtin": "chicken", "extra": 1}"#, "`extra`"),
            (
                r#"{"family": {"name": "sparse", "size": 2, "siize": 3}}"#,
                "`siize`",
            ),
            (
                r#"{"random": {"rows": 2, "cols": 2, "max_payof": 4}}"#,
                "`max_payof`",
            ),
            (
                r#"{"name": "g", "row_payoffs": [[0]], "col_payoffs": [[0]], "pay": 1}"#,
                "`pay`",
            ),
        ];
        for (text, key) in cases {
            let err = GameSpec::from_json(&Json::parse(text).unwrap()).unwrap_err();
            assert!(err.message.contains(key), "{}: {}", text, err.message);
            assert!(err.message.contains("unknown key"), "{}", err.message);
        }
        let solver_cases = [
            (r#"{"type": "cfr", "iteratons": 5}"#, "`iteratons`"),
            (
                r#"{"type": "ideal", "preset": "ideal", "intervals": 12, "hardware_seed": 1}"#,
                "`hardware_seed`",
            ),
            (
                r#"{"type": "dwave", "model": "2000q", "preset": "paper"}"#,
                "`preset`",
            ),
            (
                r#"{"type": "cnash", "preset": "ideal", "intervals": 12, "reads_per_run": 1}"#,
                "`reads_per_run`",
            ),
        ];
        for (text, key) in solver_cases {
            let err = SolverSpec::from_json(&Json::parse(text).unwrap()).unwrap_err();
            assert!(err.message.contains(key), "{}: {}", text, err.message);
        }
        let job = r#"{"jobs": [{"game": {"builtin": "chicken"},
            "solver": {"type": "cfr"}, "runs": 1, "early_stop": {"succeses": 1}}]}"#;
        let err = BatchSpec::from_json(job).unwrap_err();
        assert!(err.message.contains("`succeses`"), "{}", err.message);
        let batch = r#"{"jobs": [{"game": {"builtin": "chicken"},
            "solver": {"type": "cfr"}, "runs": 1}], "threds": 2}"#;
        let err = BatchSpec::from_json(batch).unwrap_err();
        assert!(err.message.contains("`threds`"), "{}", err.message);
    }

    #[test]
    fn cfr_spec_defaults_and_labels() {
        let spec = SolverSpec::from_json(&Json::parse(r#"{"type": "cfr"}"#).unwrap()).unwrap();
        assert_eq!(
            spec,
            SolverSpec::Cfr {
                iterations: CfrConfig::default().iterations
            }
        );
        assert_eq!(spec.label(), "cfr");
        assert!(SolverSpec::Cfr { iterations: 0 }
            .build(&games::battle_of_the_sexes())
            .is_err());
    }

    #[test]
    fn prepared_job_carries_ground_truth() {
        let job = sample_job().prepare().unwrap();
        assert_eq!(job.ground_truth.len(), 3, "BoS has 3 equilibria");
        assert_eq!(job.runs, 25);
        assert!(job.label.contains("cnash"));
    }
}
