//! Self-scheduling worker pool with ordered, cancellable delivery.
//!
//! The pool fans an indexed set of independent work items across OS
//! threads. Idle workers *steal* the next unclaimed index from a shared
//! atomic counter (self-scheduling — the degenerate but optimal form of
//! work stealing for independent equal-right items), so load balances
//! automatically however long individual items run.
//!
//! Results are delivered to the caller's sink **in index order**
//! regardless of completion order, which is what makes downstream
//! floating-point aggregation bit-identical at any thread count.

use std::collections::{BTreeMap, VecDeque};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between the scheduler, its
/// workers, and — for portfolios — sibling jobs.
///
/// Tokens form a hierarchy: [`CancelToken::child`] derives a token that
/// observes its parent's cancellation but whose own [`cancel`]
/// (triggered, e.g., by a batch's verified early stop) never propagates
/// *upward*. A long-running service hands every batch a child of its
/// shutdown token: shutdown still cancels every in-flight batch, while
/// one batch stopping early cannot leak cancellation into unrelated
/// jobs sharing the root.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Box<CancelToken>>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled root token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives a child token: cancelled when either its own
    /// [`CancelToken::cancel`] fires or any ancestor cancels; its own
    /// cancellation is invisible to the parent and to siblings.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Box::new(self.clone())),
        }
    }

    /// Broadcasts cancellation to every holder of this token and to its
    /// descendants (never to ancestors).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested here or on an ancestor.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

#[derive(Debug)]
struct WorkQueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking, stealable FIFO queue — the substrate of sharded
/// schedulers built on this pool module.
///
/// Each scheduler shard owns one queue: the owner blocks on
/// [`WorkQueue::pop_timeout`] (FIFO — oldest item first), while idle
/// siblings take from the *opposite* end with the non-blocking
/// [`WorkQueue::steal`], the classic owner/thief split that keeps the
/// two ends from contending on the same items. [`WorkQueue::close`]
/// wakes every blocked owner so shard workers can drain and exit on
/// shutdown; items already queued at close time remain poppable (drain
/// semantics), only new pushes are refused.
#[derive(Debug)]
pub struct WorkQueue<T> {
    state: Mutex<WorkQueueState<T>>,
    cv: Condvar,
}

impl<T> WorkQueue<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(WorkQueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues an item at the back and wakes one waiting owner.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("work queue poisoned");
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking up to `timeout`.
    ///
    /// Returns `None` on timeout or when the queue is closed *and*
    /// drained. A closed queue with items left keeps handing them out.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        // Track a deadline across wakeups: a notify whose item a thief
        // stole must not restart the clock, or sustained push/steal
        // traffic could block this call far past `timeout`.
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().expect("work queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (next, result) = self
                .cv
                .wait_timeout(state, remaining)
                .expect("work queue poisoned");
            state = next;
            if result.timed_out() {
                return state.items.pop_front();
            }
        }
    }

    /// Takes the *newest* item without blocking — the thief's end.
    pub fn steal(&self) -> Option<T> {
        self.state
            .lock()
            .expect("work queue poisoned")
            .items
            .pop_back()
    }

    /// Closes the queue: further pushes fail, blocked owners wake, and
    /// already-queued items remain consumable until drained.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("work queue poisoned");
        state.closed = true;
        self.cv.notify_all();
    }

    /// Whether [`WorkQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("work queue poisoned").closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("work queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Picks a worker count: the explicit request, clamped to at least one
/// thread, or all available cores when `requested` is 0.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Executes `work(0..total)` on `threads` workers, delivering results to
/// `sink` in strict index order.
///
/// `sink` returning [`ControlFlow::Break`] stops the batch: the token is
/// cancelled, workers stop claiming new indices, and any result with a
/// higher index is discarded. Because delivery is in index order, every
/// index below the break point has already been delivered — the caller
/// observes a deterministic prefix `0..=k` of the work, independent of
/// thread count and scheduling.
///
/// An externally cancelled `cancel` token likewise stops claiming; the
/// sink then sees some prefix of the work (deterministic in length only
/// for a given interleaving — external cancellation is inherently
/// timing-dependent).
///
/// Returns the number of items delivered to the sink.
///
/// Telemetry: per-task execution time and the delay between an item
/// finishing and the in-order fold consuming it are recorded into
/// [`cnash_telemetry::hot`] (`POOL_TASK_NS`, `POOL_FOLD_WAIT_NS`),
/// along with task and per-worker fold counts. Timing is skipped
/// entirely when telemetry is disabled, and nothing recorded feeds
/// back into scheduling — delivery order (and thus every folded
/// result) is identical with telemetry on or off.
pub fn fan_out_ordered<T: Send>(
    total: usize,
    threads: usize,
    cancel: &CancelToken,
    work: impl Fn(usize) -> T + Sync,
    mut sink: impl FnMut(usize, T) -> ControlFlow<()>,
) -> usize {
    if total == 0 {
        return 0;
    }
    let timing_on = cnash_telemetry::enabled();
    let threads = effective_threads(threads).min(total);
    // Bound the reorder buffer: workers stop claiming indices more than
    // `window` ahead of the fold watermark, so a single slow item keeps
    // at most O(window) undelivered results in memory, not O(total).
    let window = (threads * 8).max(64);
    let next = AtomicUsize::new(0);
    let watermark = AtomicUsize::new(0);
    let mut delivered = 0usize;

    std::thread::scope(|scope| {
        // Each result carries its producing worker and (when telemetry
        // is on) its completion instant, so the fold can credit the
        // worker and measure how long the item sat in the reorder
        // buffer.
        let (tx, rx) = mpsc::channel::<(usize, T, usize, Option<Instant>)>();
        for worker in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let watermark = &watermark;
            let work = &work;
            let cancel = cancel.clone();
            scope.spawn(move || {
                loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    // Wait (briefly) while the next unclaimed index is
                    // outside the fold window. Indices inside the window
                    // are always claimable, so the watermark item itself
                    // is never starved and the watermark keeps advancing.
                    if next.load(Ordering::Relaxed)
                        >= watermark.load(Ordering::Relaxed).saturating_add(window)
                    {
                        std::thread::yield_now();
                        continue;
                    }
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= total {
                        break;
                    }
                    let started = timing_on.then(Instant::now);
                    let item = work(k);
                    cnash_telemetry::hot::POOL_TASKS.inc();
                    let done = started.map(|s| {
                        cnash_telemetry::hot::POOL_TASK_NS
                            .record(u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        Instant::now()
                    });
                    // The aggregator may have hung up after a break;
                    // losing the send is fine then.
                    if tx.send((k, item, worker, done)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Reorder completion-order arrivals into index order.
        let mut pending: BTreeMap<usize, (T, usize, Option<Instant>)> = BTreeMap::new();
        let mut next_fold = 0usize;
        'recv: for (k, item, worker, done) in rx {
            pending.insert(k, (item, worker, done));
            while let Some((item, worker, done)) = pending.remove(&next_fold) {
                let idx = next_fold;
                next_fold += 1;
                watermark.store(next_fold, Ordering::Relaxed);
                delivered += 1;
                cnash_telemetry::hot::record_worker_fold(worker);
                if let Some(done) = done {
                    cnash_telemetry::hot::POOL_FOLD_WAIT_NS
                        .record(u64::try_from(done.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
                if sink(idx, item).is_break() {
                    cancel.cancel();
                    break 'recv;
                }
            }
        }
        // Receiver dropped here: workers unblock on send errors (and the
        // cancelled flag) and the scope joins them.
    });
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_every_index_in_order() {
        for threads in [1, 2, 8] {
            let cancel = CancelToken::new();
            let mut seen = Vec::new();
            let n = fan_out_ordered(
                100,
                threads,
                &cancel,
                |k| k * 3,
                |k, v| {
                    seen.push((k, v));
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(n, 100);
            assert_eq!(seen.len(), 100);
            for (i, (k, v)) in seen.iter().enumerate() {
                assert_eq!(*k, i);
                assert_eq!(*v, i * 3);
            }
        }
    }

    #[test]
    fn break_stops_after_exact_prefix() {
        for threads in [1, 3, 8] {
            let cancel = CancelToken::new();
            let mut seen = Vec::new();
            let n = fan_out_ordered(
                1000,
                threads,
                &cancel,
                |k| k,
                |_, v| {
                    seen.push(v);
                    if v == 17 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            assert_eq!(n, 18, "threads={threads}");
            assert_eq!(seen, (0..=17).collect::<Vec<_>>());
            assert!(cancel.is_cancelled());
        }
    }

    #[test]
    fn slow_head_item_does_not_deadlock_the_window() {
        // Item 0 finishes long after the rest: claiming must pause at
        // the window bound and resume once the head folds, still
        // delivering everything in order.
        let cancel = CancelToken::new();
        let mut seen = Vec::new();
        let n = fan_out_ordered(
            500,
            4,
            &cancel,
            |k| {
                if k == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                k
            },
            |_, v| {
                seen.push(v);
                ControlFlow::Continue(())
            },
        );
        assert_eq!(n, 500);
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn external_cancel_stops_claiming() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let n = fan_out_ordered(50, 4, &cancel, |k| k, |_, _| ControlFlow::Continue(()));
        assert!(n <= 50);
    }

    #[test]
    fn child_tokens_inherit_downward_but_never_leak_upward() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        let grandchild = a.child();
        // A child cancelling itself (an early-stopping batch) is
        // invisible to the root and to siblings...
        a.cancel();
        assert!(a.is_cancelled());
        assert!(grandchild.is_cancelled(), "descendants observe it");
        assert!(!root.is_cancelled());
        assert!(!b.is_cancelled());
        // ...while the root cancelling (service shutdown) reaches every
        // descendant.
        root.cancel();
        assert!(b.is_cancelled());
        // Clones share the flag; children do not.
        let c = CancelToken::new();
        let clone = c.clone();
        clone.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn work_queue_is_fifo_for_owners_and_lifo_for_thieves() {
        let q = WorkQueue::new();
        for k in 0..4 {
            q.push(k).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(0));
        assert_eq!(q.steal(), Some(3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.steal(), Some(2));
        assert_eq!(q.steal(), None);
    }

    #[test]
    fn work_queue_close_wakes_blocked_owners_and_drains() {
        let q = Arc::new(WorkQueue::<u32>::new());
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(7).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(7));

        q.push(8).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(9), Err(9), "closed queue refuses new work");
        // Drain semantics: items queued before close stay consumable.
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(8));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn work_queue_cross_thread_stealing_loses_nothing() {
        let q = Arc::new(WorkQueue::new());
        for k in 0..200u32 {
            q.push(k).unwrap();
        }
        q.close();
        let mut handles = Vec::new();
        for thief in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut taken = Vec::new();
                loop {
                    let item = if thief % 2 == 0 {
                        q.steal()
                    } else {
                        q.pop_timeout(Duration::from_millis(1))
                    };
                    match item {
                        Some(v) => taken.push(v),
                        None => break taken,
                    }
                }
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_is_a_noop() {
        let cancel = CancelToken::new();
        let n = fan_out_ordered(
            0,
            4,
            &cancel,
            |k| k,
            |_, _: usize| ControlFlow::Continue(()),
        );
        assert_eq!(n, 0);
    }
}
