//! Self-scheduling worker pool with ordered, cancellable delivery.
//!
//! The pool fans an indexed set of independent work items across OS
//! threads. Idle workers *steal* the next unclaimed index from a shared
//! atomic counter (self-scheduling — the degenerate but optimal form of
//! work stealing for independent equal-right items), so load balances
//! automatically however long individual items run.
//!
//! Results are delivered to the caller's sink **in index order**
//! regardless of completion order, which is what makes downstream
//! floating-point aggregation bit-identical at any thread count.

use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// A cooperative cancellation flag shared between the scheduler, its
/// workers, and — for portfolios — sibling jobs.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Broadcasts cancellation to every holder of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Picks a worker count: the explicit request, clamped to at least one
/// thread, or all available cores when `requested` is 0.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Executes `work(0..total)` on `threads` workers, delivering results to
/// `sink` in strict index order.
///
/// `sink` returning [`ControlFlow::Break`] stops the batch: the token is
/// cancelled, workers stop claiming new indices, and any result with a
/// higher index is discarded. Because delivery is in index order, every
/// index below the break point has already been delivered — the caller
/// observes a deterministic prefix `0..=k` of the work, independent of
/// thread count and scheduling.
///
/// An externally cancelled `cancel` token likewise stops claiming; the
/// sink then sees some prefix of the work (deterministic in length only
/// for a given interleaving — external cancellation is inherently
/// timing-dependent).
///
/// Returns the number of items delivered to the sink.
pub fn fan_out_ordered<T: Send>(
    total: usize,
    threads: usize,
    cancel: &CancelToken,
    work: impl Fn(usize) -> T + Sync,
    mut sink: impl FnMut(usize, T) -> ControlFlow<()>,
) -> usize {
    if total == 0 {
        return 0;
    }
    let threads = effective_threads(threads).min(total);
    // Bound the reorder buffer: workers stop claiming indices more than
    // `window` ahead of the fold watermark, so a single slow item keeps
    // at most O(window) undelivered results in memory, not O(total).
    let window = (threads * 8).max(64);
    let next = AtomicUsize::new(0);
    let watermark = AtomicUsize::new(0);
    let mut delivered = 0usize;

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let watermark = &watermark;
            let work = &work;
            let cancel = cancel.clone();
            scope.spawn(move || {
                loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    // Wait (briefly) while the next unclaimed index is
                    // outside the fold window. Indices inside the window
                    // are always claimable, so the watermark item itself
                    // is never starved and the watermark keeps advancing.
                    if next.load(Ordering::Relaxed)
                        >= watermark.load(Ordering::Relaxed).saturating_add(window)
                    {
                        std::thread::yield_now();
                        continue;
                    }
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= total {
                        break;
                    }
                    // The aggregator may have hung up after a break;
                    // losing the send is fine then.
                    if tx.send((k, work(k))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Reorder completion-order arrivals into index order.
        let mut pending: BTreeMap<usize, T> = BTreeMap::new();
        let mut next_fold = 0usize;
        'recv: for (k, item) in rx {
            pending.insert(k, item);
            while let Some(item) = pending.remove(&next_fold) {
                let idx = next_fold;
                next_fold += 1;
                watermark.store(next_fold, Ordering::Relaxed);
                delivered += 1;
                if sink(idx, item).is_break() {
                    cancel.cancel();
                    break 'recv;
                }
            }
        }
        // Receiver dropped here: workers unblock on send errors (and the
        // cancelled flag) and the scope joins them.
    });
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_every_index_in_order() {
        for threads in [1, 2, 8] {
            let cancel = CancelToken::new();
            let mut seen = Vec::new();
            let n = fan_out_ordered(
                100,
                threads,
                &cancel,
                |k| k * 3,
                |k, v| {
                    seen.push((k, v));
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(n, 100);
            assert_eq!(seen.len(), 100);
            for (i, (k, v)) in seen.iter().enumerate() {
                assert_eq!(*k, i);
                assert_eq!(*v, i * 3);
            }
        }
    }

    #[test]
    fn break_stops_after_exact_prefix() {
        for threads in [1, 3, 8] {
            let cancel = CancelToken::new();
            let mut seen = Vec::new();
            let n = fan_out_ordered(
                1000,
                threads,
                &cancel,
                |k| k,
                |_, v| {
                    seen.push(v);
                    if v == 17 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            assert_eq!(n, 18, "threads={threads}");
            assert_eq!(seen, (0..=17).collect::<Vec<_>>());
            assert!(cancel.is_cancelled());
        }
    }

    #[test]
    fn slow_head_item_does_not_deadlock_the_window() {
        // Item 0 finishes long after the rest: claiming must pause at
        // the window bound and resume once the head folds, still
        // delivering everything in order.
        let cancel = CancelToken::new();
        let mut seen = Vec::new();
        let n = fan_out_ordered(
            500,
            4,
            &cancel,
            |k| {
                if k == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                k
            },
            |_, v| {
                seen.push(v);
                ControlFlow::Continue(())
            },
        );
        assert_eq!(n, 500);
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn external_cancel_stops_claiming() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let n = fan_out_ordered(50, 4, &cancel, |k| k, |_, _| ControlFlow::Continue(()));
        assert!(n <= 50);
    }

    #[test]
    fn zero_items_is_a_noop() {
        let cancel = CancelToken::new();
        let n = fan_out_ordered(
            0,
            4,
            &cancel,
            |k| k,
            |_, _: usize| ControlFlow::Continue(()),
        );
        assert_eq!(n, 0);
    }
}
