//! Property tests of the runtime's two core guarantees:
//!
//! 1. **Thread-count determinism** — a batch folds the same seed-ordered
//!    outcome stream whatever the worker count, so aggregate statistics
//!    are bit-identical at 1, 2 and 8 threads (with and without early
//!    stop).
//! 2. **Verified early-stop** — the stop conditions only count
//!    equilibria the runtime re-verified in exact arithmetic, so a
//!    solver that *claims* success with a bogus profile can never
//!    trigger an early stop.

use cnash_core::{CNashConfig, CNashSolver, NashSolver, RunOutcome};
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::{games, BimatrixGame, Game, MixedStrategy, Profile};
use cnash_runtime::{BatchRunner, EarlyStop};
use proptest::prelude::*;

/// Worker counts pinned by CI's determinism matrix: the workflow runs
/// this suite with `CNASH_TEST_THREADS` ∈ {1, 2, 8} and every
/// determinism property additionally compares against the pair
/// `(t, 2t + 1)`. The derived odd count lands outside the inline
/// {1, 2, 8} comparisons (3, 5, 17 across the matrix; 4 and 9 for the
/// local default of 4), so each matrix job pins seed-ordered folding at
/// worker counts — including chunk-boundary-unfriendly odd ones — that
/// no other job or inline assertion covers.
fn matrix_threads() -> (usize, usize) {
    let t = std::env::var("CNASH_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(4);
    (t, 2 * t + 1)
}

/// A solver that lies: it flags every run as a success but returns a
/// profile that is *not* an equilibrium of its game.
struct LyingSolver {
    game: BimatrixGame,
}

impl LyingSolver {
    fn new() -> Self {
        // (Cooperate, Cooperate) is famously NOT a Nash equilibrium of
        // the prisoner's dilemma.
        Self {
            game: games::prisoners_dilemma(),
        }
    }

    fn bogus_profile(&self) -> Profile {
        Profile::pair(
            MixedStrategy::pure(self.game.row_actions(), 0).expect("valid"),
            MixedStrategy::pure(self.game.col_actions(), 0).expect("valid"),
        )
    }
}

impl NashSolver for LyingSolver {
    fn name(&self) -> &str {
        "liar"
    }

    fn game(&self) -> &dyn Game {
        &self.game
    }

    fn run(&self, _seed: u64) -> RunOutcome {
        let profile = self.bogus_profile();
        RunOutcome {
            solutions: vec![profile.clone()],
            profile: Some(profile),
            is_equilibrium: true, // the lie
            hit_time: Some(1e-6),
            total_time: 1e-5,
            measured_objective: 0.0,
            solutions_truncated: false,
        }
    }
}

/// A solver that finds a genuine equilibrium on every `hit_every`-th
/// seed and errors otherwise.
struct SometimesSolver {
    game: BimatrixGame,
    truth: Profile,
    hit_every: u64,
}

impl SometimesSolver {
    fn new(hit_every: u64) -> Self {
        let game = games::prisoners_dilemma();
        // (Defect, Defect) IS the prisoner's dilemma equilibrium.
        let truth = Profile::pair(
            MixedStrategy::pure(game.row_actions(), 1).expect("valid"),
            MixedStrategy::pure(game.col_actions(), 1).expect("valid"),
        );
        assert!(game.is_equilibrium_profile(&truth, 1e-9));
        Self {
            game,
            truth,
            hit_every,
        }
    }
}

impl NashSolver for SometimesSolver {
    fn name(&self) -> &str {
        "sometimes"
    }

    fn game(&self) -> &dyn Game {
        &self.game
    }

    fn run(&self, seed: u64) -> RunOutcome {
        if seed.is_multiple_of(self.hit_every) {
            RunOutcome {
                profile: Some(self.truth.clone()),
                is_equilibrium: true,
                hit_time: Some(1e-6),
                total_time: 1e-5,
                measured_objective: 0.0,
                solutions: vec![self.truth.clone()],
                solutions_truncated: false,
            }
        } else {
            RunOutcome {
                profile: None,
                is_equilibrium: false,
                hit_time: None,
                total_time: 1e-5,
                measured_objective: 1.0,
                solutions: Vec::new(),
                solutions_truncated: false,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bit-identical aggregates at 1, 2 and 8 worker threads, across
    /// run counts, seeds and noisy (paper-config) hardware.
    #[test]
    fn aggregates_identical_across_thread_counts(
        runs in 1usize..14,
        base_seed in 0u64..500,
        hardware_seed in 0u64..50,
    ) {
        let game = games::battle_of_the_sexes();
        let truth = enumerate_equilibria(&game, 1e-9);
        let solver = CNashSolver::new(
            &game,
            CNashConfig::paper(12).with_iterations(1000),
            hardware_seed,
        )
        .expect("benchmark maps");
        let runner = BatchRunner::new(runs, base_seed);
        let one = runner.threads(1).evaluate(&solver, &truth);
        let two = runner.threads(2).evaluate(&solver, &truth);
        let eight = runner.threads(8).evaluate(&solver, &truth);
        let (t, odd) = matrix_threads();
        let matrix = runner.threads(t).evaluate(&solver, &truth);
        let matrix_odd = runner.threads(odd).evaluate(&solver, &truth);
        prop_assert_eq!(&one.report, &two.report);
        prop_assert_eq!(&one.report, &eight.report);
        prop_assert_eq!(&one.report, &matrix.report);
        prop_assert_eq!(&one.report, &matrix_odd.report);
        prop_assert_eq!(one.executed_runs, eight.executed_runs);
        prop_assert_eq!(one.executed_runs, matrix.executed_runs);
        prop_assert_eq!(one.executed_runs, matrix_odd.executed_runs);
    }

    /// Determinism holds under early stop too: the stop index is decided
    /// on the folded prefix, not on racy completion order.
    #[test]
    fn early_stop_prefix_identical_across_thread_counts(
        base_seed in 0u64..200,
        target in 1usize..4,
    ) {
        let game = games::battle_of_the_sexes();
        let truth = enumerate_equilibria(&game, 1e-9);
        let solver = CNashSolver::new(
            &game,
            CNashConfig::ideal(12).with_iterations(1500),
            0,
        )
        .expect("benchmark maps");
        let runner = BatchRunner::new(60, base_seed).early_stop(EarlyStop::Successes(target));
        let one = runner.threads(1).evaluate(&solver, &truth);
        let eight = runner.threads(8).evaluate(&solver, &truth);
        let (t, odd) = matrix_threads();
        let matrix = runner.threads(t).evaluate(&solver, &truth);
        let matrix_odd = runner.threads(odd).evaluate(&solver, &truth);
        prop_assert_eq!(one.executed_runs, eight.executed_runs);
        prop_assert_eq!(one.executed_runs, matrix.executed_runs);
        prop_assert_eq!(one.executed_runs, matrix_odd.executed_runs);
        prop_assert_eq!(&one.report, &eight.report);
        prop_assert_eq!(&one.report, &matrix.report);
        prop_assert_eq!(&one.report, &matrix_odd.report);
        prop_assert_eq!(one.stopped_early, eight.stopped_early);
        prop_assert_eq!(one.stopped_early, matrix.stopped_early);
        prop_assert_eq!(one.stopped_early, matrix_odd.stopped_early);
    }

    /// A lying solver can never trigger an early stop: every claimed
    /// success is re-verified against the game before it counts.
    #[test]
    fn early_stop_never_fires_on_unverified_equilibria(
        runs in 1usize..40,
        threads in 1usize..9,
    ) {
        let solver = LyingSolver::new();
        let truth = enumerate_equilibria(&solver.game, 1e-9);
        let out = BatchRunner::new(runs, 0)
            .threads(threads)
            .early_stop(EarlyStop::FIRST_VERIFIED)
            .evaluate(&solver, &truth);
        prop_assert!(!out.stopped_early, "stopped on an unverified equilibrium");
        prop_assert_eq!(out.executed_runs, runs);
        // And nothing unverified leaks into the distinct-equilibria set.
        for eq in &out.report.distinct_found {
            prop_assert!(solver.game.is_equilibrium(&eq.row, &eq.col, 1e-6));
        }
    }

    /// Early stop fires exactly at the first verified success in seed
    /// order, at any thread count.
    #[test]
    fn early_stop_fires_at_first_verified_success(
        hit_every in 1u64..8,
        threads in 1usize..9,
    ) {
        let solver = SometimesSolver::new(hit_every);
        let truth = enumerate_equilibria(&solver.game, 1e-9);
        let out = BatchRunner::new(64, 1)
            .threads(threads)
            .early_stop(EarlyStop::FIRST_VERIFIED)
            .evaluate(&solver, &truth);
        prop_assert!(out.stopped_early);
        // Seeds are 1, 2, ...: the first seed divisible by hit_every is
        // hit_every itself, i.e. run index hit_every - 1, so exactly
        // hit_every runs execute.
        prop_assert_eq!(out.executed_runs as u64, hit_every);
        prop_assert_eq!(out.report.distribution.pure_ne, 1);
    }
}
