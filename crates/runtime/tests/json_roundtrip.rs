//! Round-trip property tests for the runtime's JSON layer:
//! `serialize → parse → re-serialize` must be **bitwise** stable for
//! every spec (`spec.rs`) and report (`report.rs`) document, in both
//! the pretty and the compact (JSON-lines) framings.
//!
//! Bitwise text stability is the property the golden-file service
//! smoke test stands on: if a document ever re-serialised differently
//! (float formatting, key order, escaping), golden diffs would churn
//! without any semantic change. The report properties include the
//! `hits_truncated` / `solutions_truncated` flags introduced with the
//! per-run hit-recorder caps.

use cnash_core::experiment::ReportAccumulator;
use cnash_core::RunOutcome;
use cnash_game::{games, MixedStrategy, Profile};
use cnash_runtime::batch::{BatchReport, EarlyStop};
use cnash_runtime::report::{batch_report_json, game_report_json};
use cnash_runtime::spec::{BatchSpec, ConfigSpec, GameSpec, JobSpec, SolverSpec};
use cnash_runtime::{Json, PortfolioStop};
use proptest::prelude::*;

// ---- strategies --------------------------------------------------------

fn game_spec(which: u8, rows: usize, cols: usize, cells: &[f64], seed: u64) -> GameSpec {
    match which % 4 {
        0 => GameSpec::Builtin("battle_of_the_sexes".into()),
        3 => {
            // `which % 4 == 3` fixes the low bits, so the sub-choices
            // derive from `which / 4` (which does cover all residues):
            // every registry family and all four scale/knob elision
            // combinations round-trip over the proptest case budget.
            let sel = which as usize / 4;
            let fam = cnash_game::families::Family::ALL[sel % 6];
            GameSpec::Family {
                family: fam.name().into(),
                size: rows.max(2),
                // Rectangular overrides (PR-7) must round-trip too.
                rows: if sel.is_multiple_of(5) {
                    Some(cols.max(1))
                } else {
                    None
                },
                cols: if sel % 7 == 1 {
                    Some(rows.max(1))
                } else {
                    None
                },
                scale: if sel.is_multiple_of(2) { None } else { Some(6) },
                // Every registry family accepts knob = 1.
                knob: if sel.is_multiple_of(3) { None } else { Some(1) },
                seed,
            }
        }
        1 => {
            let payoff = |offset: usize| -> Vec<Vec<f64>> {
                (0..rows)
                    .map(|i| {
                        (0..cols)
                            .map(|j| cells[(offset + i * cols + j) % cells.len()])
                            .collect()
                    })
                    .collect()
            };
            GameSpec::Explicit {
                name: "explicit".into(),
                row_payoffs: payoff(0),
                col_payoffs: payoff(1),
            }
        }
        _ => GameSpec::Random {
            rows,
            cols,
            max_payoff: 3,
            seed,
        },
    }
}

fn solver_spec(which: u8, iterations: usize, seed: u64) -> SolverSpec {
    match which % 5 {
        0 => SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(iterations),
            hardware_seed: seed,
        },
        1 => SolverSpec::CNash {
            config: ConfigSpec {
                corner: Some("snfp".into()),
                gap_tolerance: Some(0.125),
                use_wta: Some(true),
                ..ConfigSpec::paper(16)
            },
            hardware_seed: seed,
        },
        2 => SolverSpec::Ideal {
            config: ConfigSpec::ideal(12).with_iterations(iterations),
        },
        3 => SolverSpec::Cfr {
            iterations: iterations.max(1),
        },
        _ => SolverSpec::DWave {
            model: "2000q".into(),
            reads_per_run: iterations.max(1),
        },
    }
}

fn early_stop(which: u8, n: usize) -> Option<EarlyStop> {
    match which % 3 {
        0 => None,
        1 => Some(EarlyStop::Successes(n)),
        _ => Some(EarlyStop::Coverage(n)),
    }
}

#[allow(clippy::too_many_arguments)]
fn job_spec(
    game_kind: u8,
    solver_kind: u8,
    stop_kind: u8,
    rows: usize,
    cols: usize,
    cells: Vec<f64>,
    runs: usize,
    base_seed: u64,
) -> JobSpec {
    JobSpec {
        game: game_spec(game_kind, rows, cols, &cells, base_seed),
        solver: solver_spec(solver_kind, runs * 100, base_seed ^ 0xABCD),
        runs,
        base_seed,
        early_stop: early_stop(stop_kind, runs.max(1)),
        label: if game_kind.is_multiple_of(2) {
            Some(format!("job-{base_seed}"))
        } else {
            None
        },
    }
}

// ---- spec round trips --------------------------------------------------

proptest! {
    #[test]
    fn job_spec_text_round_trips_bitwise(
        (game_kind, solver_kind, stop_kind) in (0u8..=255, 0u8..=255, 0u8..=255),
        (rows, cols, runs) in (1usize..4, 1usize..4, 1usize..50),
        cells in prop::collection::vec(-4.0f64..4.0, 4..10),
        base_seed in 0u64..u64::MAX,
    ) {
        let spec = job_spec(game_kind, solver_kind, stop_kind, rows, cols, cells, runs, base_seed);
        let text = spec.to_json().pretty();
        let doc = Json::parse(&text).map_err(|e| e.to_string())?;
        let again = JobSpec::from_json(&doc).map_err(|e| e.to_string())?;
        prop_assert_eq!(&again, &spec);
        // Bitwise: the reparsed spec serialises to the identical text.
        prop_assert_eq!(again.to_json().pretty(), text);
    }

    #[test]
    fn batch_spec_round_trips_in_both_framings(
        (game_kind, solver_kind, stop_kind) in (0u8..=255, 0u8..=255, 0u8..=255),
        jobs in 1usize..4,
        threads in 0usize..16,
        cells in prop::collection::vec(-2.0f64..6.0, 4..8),
        base_seed in 0u64..(1u64 << 60),
    ) {
        let spec = BatchSpec {
            jobs: (0..jobs)
                .map(|k| job_spec(
                    game_kind.wrapping_add(k as u8),
                    solver_kind.wrapping_add(k as u8),
                    stop_kind,
                    2,
                    2,
                    cells.clone(),
                    k + 1,
                    base_seed.wrapping_add(k as u64),
                ))
                .collect(),
            stop: if threads % 2 == 0 {
                PortfolioStop::FirstTarget
            } else {
                PortfolioStop::Independent
            },
            threads,
        };
        let pretty = spec.to_json().pretty();
        let again = BatchSpec::from_json(&pretty).map_err(|e| e.to_string())?;
        prop_assert_eq!(&again, &spec);
        prop_assert_eq!(again.to_json().pretty(), pretty.clone());
        // Compact (JSON-lines) framing parses back to the same document.
        let compact = spec.to_json().compact();
        prop_assert!(!compact.contains('\n'));
        let reparsed = Json::parse(&compact).map_err(|e| e.to_string())?;
        prop_assert_eq!(reparsed, Json::parse(&pretty).map_err(|e| e.to_string())?);
    }
}

// ---- report round trips ------------------------------------------------

/// A synthetic run outcome exercising every report bucket, including
/// the PR-2 truncation flags.
fn outcome(kind: u8, time: f64, truncated: bool) -> RunOutcome {
    let game = games::battle_of_the_sexes();
    let pure = |i: usize| {
        (
            MixedStrategy::pure(2, i).expect("valid"),
            MixedStrategy::pure(2, i).expect("valid"),
        )
    };
    let mixed = || {
        (
            MixedStrategy::new(vec![2.0 / 3.0, 1.0 / 3.0]).expect("valid"),
            MixedStrategy::new(vec![1.0 / 3.0, 2.0 / 3.0]).expect("valid"),
        )
    };
    match kind % 4 {
        // Pure equilibrium hit, solutions recorded.
        0 => RunOutcome {
            profile: Some(Profile::pair(pure(0).0, pure(0).1)),
            is_equilibrium: game.is_equilibrium(&pure(0).0, &pure(0).1, 1e-9),
            hit_time: Some(time / 2.0),
            total_time: time,
            measured_objective: 0.0,
            solutions: vec![
                Profile::pair(pure(0).0, pure(0).1),
                Profile::pair(mixed().0, mixed().1),
            ],
            solutions_truncated: truncated,
        },
        // Mixed equilibrium hit.
        1 => RunOutcome {
            profile: Some(Profile::pair(mixed().0, mixed().1)),
            is_equilibrium: true,
            hit_time: Some(time),
            total_time: time,
            measured_objective: 0.0,
            solutions: vec![Profile::pair(mixed().0, mixed().1)],
            solutions_truncated: truncated,
        },
        // Error: non-equilibrium profile.
        2 => RunOutcome {
            profile: Some(Profile::pair(pure(0).0, pure(1).1)),
            is_equilibrium: false,
            hit_time: None,
            total_time: time,
            measured_objective: 1.0,
            solutions: Vec::new(),
            solutions_truncated: truncated,
        },
        // Error: undecodable.
        _ => RunOutcome {
            profile: None,
            is_equilibrium: false,
            hit_time: None,
            total_time: time,
            measured_objective: 2.0,
            solutions: Vec::new(),
            solutions_truncated: truncated,
        },
    }
}

proptest! {
    #[test]
    fn game_report_json_is_bitwise_stable(
        kinds in prop::collection::vec(0u8..=255, 1..12),
        times in prop::collection::vec(1e-7f64..1e-3, 12),
        truncate_at in 0usize..24,
    ) {
        let game = games::battle_of_the_sexes();
        let truth = cnash_game::support_enum::enumerate_equilibria(&game, 1e-9);
        let mut acc = ReportAccumulator::new("prop", &game);
        let mut any_truncated = false;
        for (k, kind) in kinds.iter().enumerate() {
            let truncated = k == truncate_at;
            any_truncated |= truncated;
            acc.fold(&outcome(*kind, times[k % times.len()], truncated));
        }
        let report = acc.finish(&truth);
        let doc = game_report_json(&report);
        let text = doc.pretty();
        let reparsed = Json::parse(&text).map_err(|e| e.to_string())?;
        // Bitwise: parse → re-serialize reproduces the text exactly, in
        // both framings.
        prop_assert_eq!(reparsed.pretty(), text);
        prop_assert_eq!(
            Json::parse(&doc.compact()).map_err(|e| e.to_string())?,
            reparsed.clone()
        );
        // The PR-2 truncation flag survives the trip.
        prop_assert_eq!(
            reparsed.get("hits_truncated").map_err(|e| e.to_string())?.as_bool().map_err(|e| e.to_string())?,
            any_truncated
        );
        prop_assert_eq!(
            reparsed.get("runs").map_err(|e| e.to_string())?.as_usize().map_err(|e| e.to_string())?,
            kinds.len()
        );
    }

    #[test]
    fn batch_report_json_is_bitwise_stable(
        kinds in prop::collection::vec(0u8..=255, 1..8),
        (threads, scheduled_extra) in (1usize..16, 0usize..5),
        wall in 1e-4f64..10.0,
        stopped in prop::bool::ANY,
    ) {
        let game = games::battle_of_the_sexes();
        let truth = cnash_game::support_enum::enumerate_equilibria(&game, 1e-9);
        let mut acc = ReportAccumulator::new("prop", &game);
        for (k, kind) in kinds.iter().enumerate() {
            acc.fold(&outcome(*kind, 1e-5, k == 2));
        }
        let batch = BatchReport {
            report: acc.finish(&truth),
            scheduled_runs: kinds.len() + scheduled_extra,
            executed_runs: kinds.len(),
            stopped_early: stopped,
            cancelled: !stopped && scheduled_extra > 0,
            threads,
            wall_seconds: wall,
        };
        let text = batch_report_json(&batch).pretty();
        let reparsed = Json::parse(&text).map_err(|e| e.to_string())?;
        prop_assert_eq!(reparsed.pretty(), text);
        prop_assert_eq!(
            reparsed.get("stopped_early").map_err(|e| e.to_string())?.as_bool().map_err(|e| e.to_string())?,
            stopped
        );
    }
}

// ---- targeted regressions ----------------------------------------------

#[test]
fn seeds_at_the_f64_boundary_round_trip_bitwise() {
    for seed in [0, 1, (1 << 53) - 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
        let spec = JobSpec {
            game: GameSpec::Builtin("matching_pennies".into()),
            solver: SolverSpec::CNash {
                config: ConfigSpec::ideal(12),
                hardware_seed: seed,
            },
            runs: 1,
            base_seed: seed,
            early_stop: None,
            label: None,
        };
        let text = spec.to_json().pretty();
        let again = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(again, spec, "seed {seed}");
        assert_eq!(again.to_json().pretty(), text, "seed {seed}");
    }
}

#[test]
fn early_stop_forms_round_trip_bitwise() {
    for stop in [
        None,
        Some(EarlyStop::Successes(1)),
        Some(EarlyStop::Coverage(3)),
    ] {
        let spec = JobSpec {
            game: GameSpec::Builtin("stag_hunt".into()),
            solver: SolverSpec::Ideal {
                config: ConfigSpec::ideal(12),
            },
            runs: 5,
            base_seed: 0,
            early_stop: stop,
            label: None,
        };
        let text = spec.to_json().pretty();
        let again = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(again.early_stop, stop);
        assert_eq!(again.to_json().pretty(), text);
    }
}
