//! Property tests of the `cnash_game::Game` adapter layer.
//!
//! The bimatrix stack was rebased onto the generic trait; these tests
//! pin the contract that the rebase is *bit-exact*: for every seeded
//! family, the `BimatrixGame → dyn Game → solver` path produces the
//! same bits as the typed bimatrix path, and canonical fingerprints are
//! invariant across every entry point (typed call, trait object, family
//! spec, explicit-payoff spec).

use cnash_core::{CNashSolver, CfrConfig, CfrSolver, IdealSolver, NashSolver};
use cnash_game::families::Family;
use cnash_game::{BimatrixGame, Game, MixedStrategy, Profile};
use cnash_runtime::spec::{ConfigSpec, GameSpec, SolverSpec};

/// Every family × size × seed instance the properties quantify over.
fn family_instances() -> Vec<(Family, usize, u64, BimatrixGame)> {
    let mut games = Vec::new();
    for family in Family::ALL {
        for size in [2usize, 3] {
            for seed in 0..2u64 {
                let game = family
                    .build(size, family.default_scale(), family.default_knob(), seed)
                    .expect("family instance builds");
                games.push((family, size, seed, game));
            }
        }
    }
    games
}

/// A deterministic mixed profile exercising non-pure evaluation paths.
fn mixed_profile(game: &BimatrixGame) -> Profile {
    Profile::pair(
        MixedStrategy::uniform(game.row_actions()).expect("non-empty rows"),
        MixedStrategy::uniform(game.col_actions()).expect("non-empty cols"),
    )
}

#[test]
fn trait_evaluation_is_bit_identical_to_the_typed_path_on_all_families() {
    for (_, _, _, game) in family_instances() {
        let dyn_game: &dyn Game = &game;
        assert_eq!(dyn_game.players(), 2);
        assert_eq!(dyn_game.num_actions(0), game.row_actions());
        assert_eq!(dyn_game.num_actions(1), game.col_actions());
        // Pure profiles: the trait's joint-action evaluation is exactly
        // the payoff-matrix entry.
        for r in 0..game.row_actions() {
            for c in 0..game.col_actions() {
                assert_eq!(dyn_game.pure_payoff(0, &[r, c]), game.row_payoffs()[(r, c)]);
                assert_eq!(dyn_game.pure_payoff(1, &[r, c]), game.col_payoffs()[(r, c)]);
            }
        }
        // Mixed profiles: trait payoff/exploitability are the same bits
        // as the closed-form bimatrix expected payoffs and Nash gap.
        let profile = mixed_profile(&game);
        let (p, q) = profile.as_pair().expect("two players");
        let (f1, f2) = game.payoffs(p, q).expect("shapes match");
        assert_eq!(dyn_game.payoff(0, &profile), f1);
        assert_eq!(dyn_game.payoff(1, &profile), f2);
        let gap = game.nash_gap(p, q).expect("shapes match");
        assert_eq!(dyn_game.exploitability(&profile), gap);
        assert_eq!(
            dyn_game.is_equilibrium_profile(&profile, 1e-6),
            game.is_equilibrium(p, q, 1e-6)
        );
        // The typed view recovered from the trait object is the same
        // game, not a copy with different bits.
        let back = dyn_game.as_bimatrix().expect("bimatrix view");
        assert_eq!(back.row_payoffs(), game.row_payoffs());
        assert_eq!(back.col_payoffs(), game.col_payoffs());
    }
}

#[test]
fn solver_outcomes_are_bit_identical_across_typed_and_spec_entry_points() {
    for (_, _, seed, game) in family_instances() {
        // Spec-built solver (the wire/service path, `Box<dyn NashSolver>`
        // over the trait) vs direct typed construction: same bits out.
        let spec = SolverSpec::CNash {
            config: ConfigSpec::ideal(12).with_iterations(300),
            hardware_seed: 1,
        };
        let via_spec = spec.build(&game).expect("spec builds");
        let typed = CNashSolver::new(
            &game,
            ConfigSpec::ideal(12).with_iterations(300).build().unwrap(),
            1,
        )
        .expect("typed builds");
        assert_eq!(via_spec.run(seed), typed.run(seed), "{}", game.name());

        let ideal_spec = SolverSpec::Ideal {
            config: ConfigSpec::ideal(12).with_iterations(300),
        };
        let via_spec = ideal_spec.build(&game).expect("spec builds");
        let typed = IdealSolver::new(
            &game,
            ConfigSpec::ideal(12).with_iterations(300).build().unwrap(),
        );
        assert_eq!(via_spec.run(seed), typed.run(seed), "{}", game.name());

        // CFR consumes the game only as `Box<dyn Game>`: two boxes of
        // the same bimatrix clone must run identically.
        let cfr_spec = SolverSpec::Cfr { iterations: 500 };
        let via_spec = cfr_spec.build(&game).expect("spec builds");
        let typed =
            CfrSolver::new(Box::new(game.clone()), CfrConfig::new(500)).expect("typed builds");
        assert_eq!(via_spec.run(seed), typed.run(seed), "{}", game.name());
    }
}

#[test]
fn canonical_fingerprints_are_invariant_across_entry_points() {
    for (family, size, seed, game) in family_instances() {
        let spec = GameSpec::Family {
            family: family.name().into(),
            size,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed,
        };
        let from_spec = spec.build().expect("family spec builds");
        let explicit = GameSpec::from_game(&game).build().expect("explicit builds");
        let typed_fp = game.canonical_fingerprint();
        // Trait hook == typed call on the same value.
        assert_eq!((&game as &dyn Game).fingerprint(), typed_fp);
        // Family-spec and explicit-payoff entry points land on the same
        // canonical instance (the cache-key contract).
        assert_eq!(from_spec.canonical_fingerprint(), typed_fp);
        assert_eq!(explicit.canonical_fingerprint(), typed_fp);
        assert_eq!((&explicit as &dyn Game).fingerprint(), typed_fp);
    }
}
