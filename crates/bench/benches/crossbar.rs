//! Criterion micro-benchmarks of the crossbar read paths: the prefix-sum
//! fast path used inside the SA loop vs the naive cell-by-cell sum, plus
//! the Phase-1 MV read and full hardware construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnash_crossbar::{BiCrossbar, Crossbar, CrossbarConfig, MappingSpec, QuantizedPayoffs};
use cnash_device::cell::CellParams;
use cnash_device::variability::VariabilityModel;
use cnash_game::games;

fn build_mpd_crossbar() -> Crossbar {
    let g = games::modified_prisoners_dilemma();
    let q = QuantizedPayoffs::from_integer_matrix(g.row_payoffs()).expect("integer payoffs");
    let spec = MappingSpec::new(12, q.max_element()).expect("valid spec");
    Crossbar::build(q, spec, CellParams::default(), VariabilityModel::paper(), 7)
        .expect("valid build")
}

fn bench_reads(c: &mut Criterion) {
    let xbar = build_mpd_crossbar();
    let p = [1u32, 0, 2, 0, 3, 0, 6, 0];
    let q = [0u32, 2, 0, 1, 0, 0, 3, 6];

    c.bench_function("crossbar/vmv_fast_8x8", |b| {
        b.iter(|| xbar.read_vmv(black_box(&p), black_box(&q)).expect("read"))
    });
    c.bench_function("crossbar/vmv_naive_8x8", |b| {
        b.iter(|| {
            xbar.read_vmv_naive(black_box(&p), black_box(&q))
                .expect("read")
        })
    });
    c.bench_function("crossbar/mv_phase1_8x8", |b| {
        b.iter(|| xbar.read_mv(black_box(&q)).expect("read"))
    });
}

fn bench_build(c: &mut Criterion) {
    let g = games::modified_prisoners_dilemma();
    c.bench_function("crossbar/build_bicrossbar_8x8", |b| {
        b.iter(|| BiCrossbar::build(black_box(&g), &CrossbarConfig::paper(12), 7).expect("build"))
    });
}

criterion_group!(benches, bench_reads, bench_build);
criterion_main!(benches);
