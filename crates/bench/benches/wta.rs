//! Criterion micro-benchmarks of WTA tree evaluation at the paper's
//! benchmark sizes (2, 3 and 8 inputs) and a larger 64-input tree.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnash_wta::{WtaConfig, WtaTree};

fn bench_wta(c: &mut Criterion) {
    for inputs in [2usize, 3, 8, 64] {
        let tree = WtaTree::build(inputs, &WtaConfig::nominal(), 1);
        let currents: Vec<f64> = (0..inputs).map(|k| (k + 1) as f64 * 1e-6).collect();
        c.bench_function(&format!("wta/eval_{inputs}_inputs"), |b| {
            b.iter(|| tree.eval(black_box(&currents)))
        });
    }
}

fn bench_build(c: &mut Criterion) {
    c.bench_function("wta/build_8_inputs", |b| {
        b.iter(|| WtaTree::build(8, &WtaConfig::nominal(), black_box(3)))
    });
}

criterion_group!(benches, bench_wta, bench_build);
criterion_main!(benches);
