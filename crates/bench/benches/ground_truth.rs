//! Criterion benchmarks of the ground-truth solvers: support enumeration
//! (the Nashpy substitute) and Lemke–Howson.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnash_game::games;
use cnash_game::lemke_howson::lemke_howson;
use cnash_game::support_enum::enumerate_equilibria;

fn bench_enumeration(c: &mut Criterion) {
    for game in [
        games::battle_of_the_sexes(),
        games::bird_game(),
        games::modified_prisoners_dilemma(),
    ] {
        let label = format!("ground_truth/support_enum_{}_actions", game.row_actions());
        c.bench_function(&label, |b| {
            b.iter(|| enumerate_equilibria(black_box(&game), 1e-9))
        });
    }
}

fn bench_lemke_howson(c: &mut Criterion) {
    let game = games::modified_prisoners_dilemma();
    c.bench_function("ground_truth/lemke_howson_8_actions", |b| {
        b.iter(|| lemke_howson(black_box(&game), 0).expect("terminates"))
    });
}

criterion_group!(benches, bench_enumeration, bench_lemke_howson);
criterion_main!(benches);
