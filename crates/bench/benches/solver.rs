//! Criterion benchmarks of end-to-end solver runs on the three paper
//! benchmarks (reduced iteration budgets — these are throughput
//! benchmarks of the simulator, not success-rate experiments).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnash_core::baselines::DWaveNashSolver;
use cnash_core::{CNashConfig, CNashSolver, NashSolver};
use cnash_game::games;
use cnash_qubo::dwave::DWaveModel;

fn bench_cnash_runs(c: &mut Criterion) {
    for bench in games::paper_benchmarks() {
        let cfg = CNashConfig::paper(12).with_iterations(1000);
        let solver = CNashSolver::new(&bench.game, cfg, 0).expect("maps");
        let label = format!("solver/cnash_1k_iters_{}_actions", bench.game.row_actions());
        let mut seed = 0u64;
        c.bench_function(&label, |b| {
            b.iter(|| {
                seed = seed.wrapping_add(1);
                solver.run(black_box(seed))
            })
        });
    }
}

fn bench_evaluate(c: &mut Criterion) {
    use cnash_anneal::moves::GridStrategyPair;
    let game = games::modified_prisoners_dilemma();
    let solver = CNashSolver::new(&game, CNashConfig::paper(12), 0).expect("maps");
    let state = GridStrategyPair::all_on_first(8, 8, 12).expect("valid");
    c.bench_function("solver/two_phase_evaluate_8x8", |b| {
        b.iter(|| solver.evaluate(black_box(&state)))
    });
}

fn bench_dwave_read(c: &mut Criterion) {
    let game = games::bird_game();
    let solver = DWaveNashSolver::new(&game, DWaveModel::advantage_4_1(), 1).expect("builds");
    let mut seed = 0u64;
    c.bench_function("solver/dwave_advantage_single_read_bird", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            solver.run(black_box(seed))
        })
    });
}

criterion_group!(benches, bench_cnash_runs, bench_evaluate, bench_dwave_read);
criterion_main!(benches);
