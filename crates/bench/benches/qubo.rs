//! Criterion benchmarks of the S-QUBO machinery: construction, energy
//! evaluation, flip deltas, and one emulated annealing read.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnash_game::games;
use cnash_qubo::annealer::{anneal, AnnealParams};
use cnash_qubo::squbo::{SQubo, SQuboWeights};

fn bench_squbo(c: &mut Criterion) {
    let game = games::modified_prisoners_dilemma();
    c.bench_function("qubo/build_squbo_8x8", |b| {
        b.iter(|| SQubo::build(black_box(&game), &SQuboWeights::default()).expect("builds"))
    });

    let s = SQubo::build(&game, &SQuboWeights::default()).expect("builds");
    let x: Vec<bool> = (0..s.num_vars()).map(|k| k % 3 == 0).collect();
    c.bench_function("qubo/energy_70_vars", |b| {
        b.iter(|| s.qubo().energy(black_box(&x)))
    });
    c.bench_function("qubo/flip_delta_70_vars", |b| {
        b.iter(|| s.qubo().flip_delta(black_box(&x), black_box(13)))
    });
}

fn bench_anneal(c: &mut Criterion) {
    let game = games::bird_game();
    let s = SQubo::build(&game, &SQuboWeights::default()).expect("builds");
    let params = AnnealParams::new(100, 30.0, 0.1);
    let mut seed = 0u64;
    c.bench_function("qubo/anneal_100_sweeps_bird", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            anneal(s.qubo(), &params, black_box(seed))
        })
    });
}

criterion_group!(benches, bench_squbo, bench_anneal);
criterion_main!(benches);
