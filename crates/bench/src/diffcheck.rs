//! Differential oracle fuzzing: structured game families vs exact
//! oracles vs hardware solvers.
//!
//! The repository has two float Nash oracles that share no code
//! (`cnash_game::support_enum`, `cnash_game::lemke_howson`), one
//! exact-arithmetic **trust anchor** (`cnash_game::exact_enum`, built
//! on the dependency-free `cnash-exact` rational stack), an
//! independent verification layer (`cnash_core::certificate`), and two
//! hardware solver stacks (C-Nash crossbar, S-QUBO/D-Wave). This module
//! drives all of them against each other over a *family × size × seed*
//! grid of structured games (`cnash_game::families`) — GAMUT-style
//! differential testing:
//!
//! 1. **Oracle self-consistency** — per grid point, support enumeration
//!    must find at least one equilibrium (Nash's theorem), and every
//!    Lemke–Howson solution must certificate-verify *and* appear in the
//!    enumerated set.
//! 2. **Exact-oracle cross-check** — the exact enumerator re-walks the
//!    same support pairs in big-int rational arithmetic. Every
//!    float-enumerated equilibrium must either match an exact one
//!    (profile distance or support-class containment), or — if it is a
//!    borderline ε-point — survive exact-substitution scrutiny: its
//!    **exact** regret must stay within the claiming tolerance. A
//!    float equilibrium the exact arithmetic refutes is an
//!    `exact_oracle_disagreement`, as is an exactly-certified
//!    equilibrium that fails float verification. The direction of
//!    every check is fixed: float oracles are judged against the exact
//!    one, never the reverse. Exact support classes (including the
//!    simplex vertex representatives of exactly-singular support
//!    pairs, which the float enumerator must drop) are merged into the
//!    continuum representatives, so hits on continua the float oracle
//!    cannot characterise classify instead of landing in
//!    `unlisted_unclassified_hits`.
//! 3. **Solver soundness** — every solver run that *claims* a hit
//!    (`RunOutcome::is_equilibrium`) is re-verified through an
//!    independently computed [`Certificate`]. A claim the certificate
//!    rejects is a **false equilibrium** — the one mismatch class that
//!    is always a bug. Runs that find nothing are **missed but
//!    allowed** (the solvers are stochastic); certificate-valid hits
//!    absent from the enumerated set are **unlisted-valid** (possible
//!    on degenerate games with equilibrium continua) and merely
//!    counted.
//!
//! On failure the harness **minimizes** the offending game before
//! reporting it, alternating three shrinking passes to a fixpoint
//! (each re-running the failing solver seed against every candidate):
//!
//! * **action deletion** — greedy single row/column removal,
//! * **scale reduction** — halving every payoff (truncating toward
//!   zero, so integer payoffs stay integer),
//! * **payoff zeroing** — setting individual payoff cells to `0`,
//!
//! and emits a single-job, explicit-payoff, replayable jobs file —
//! `--jobs-file` replays it, re-verifying the claims with certificates.
//!
//! The sweep parallelises **per grid point** over the `cnash-runtime`
//! worker pool ([`DiffOptions::threads`]): points are claimed by idle
//! workers but folded in grid order, so the summary counters, the
//! continuum-class histogram and the first (minimized) counterexample
//! are bit-identical to a single-threaded sweep at any thread count.
//!
//! The `corrupt` flag is the harness's own test hook: it wraps every
//! solver so that claimed hits are swapped for a worst-response profile
//! *while keeping the claim flag set* — a deliberately lying solver the
//! pipeline must catch, minimize and report. CI runs it to prove the
//! failure path stays live.

use cnash_core::certificate::Certificate;
use cnash_core::NashSolver;
use cnash_exact::Rat;
use cnash_game::canonical::Hasher64;
use cnash_game::equilibrium::continuum_representatives;
use cnash_game::exact_enum::{enumerate_exact, exact_profile_regret};
use cnash_game::lemke_howson::lemke_howson_all_labels;
use cnash_game::support_enum::{enumerate_equilibria, MAX_ENUM_ACTIONS};
use cnash_game::{BimatrixGame, Equilibrium, Game, Matrix, MixedStrategy, Profile, SupportClass};
use cnash_runtime::pool::fan_out_ordered;
use cnash_runtime::spec::{BatchSpec, ConfigSpec, GameSpec, JobSpec, SolverSpec};
use cnash_runtime::{CancelToken, Json, PortfolioStop, SpecError};
use cnash_telemetry::{HistSnapshot, Histogram};
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::time::Instant;

/// Tolerance at which solvers claim hits (`RunOutcome::is_equilibrium`
/// uses exact regrets at `1e-6`); certificates re-check the same
/// criterion independently.
pub const CLAIM_TOL: f64 = 1e-6;
/// Tolerance for oracle cross-checks (Lemke–Howson's own filter).
pub const ORACLE_TOL: f64 = 1e-7;
/// Profile tolerance when matching a hit against the enumerated set.
pub const MATCH_TOL: f64 = 1e-4;
/// Payoff-tie slack when computing best-response closures
/// (support-pair classes for continuum matching).
pub const CLASS_TOL: f64 = 1e-6;
/// Probability tolerance when extracting a profile's support.
pub const SUPPORT_TOL: f64 = 1e-9;
/// Convergence gate on the CFR column: per grid point, the best run's
/// exact exploitability must stay below this (`cfr_exploitability_ok`
/// in the summary — gated in CI alongside the mismatch counters).
pub const CFR_EXPLOITABILITY_TOL: f64 = 1e-3;

/// Options of one differential-fuzz sweep.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Reduced PR-time grid (nightly runs the full grid).
    pub quick: bool,
    /// Base seed, offsetting every family/run seed in the grid (the
    /// nightly job derives it from the date).
    pub base_seed: u64,
    /// Solver runs per (grid point, solver).
    pub runs: usize,
    /// Test hook: corrupt claimed hits to exercise the failure path.
    pub corrupt: bool,
    /// Worker threads sweeping the grid (`0` = all cores). Purely a
    /// wall-clock knob: results are bit-identical at any count.
    pub threads: usize,
}

impl DiffOptions {
    /// Standard options for a sweep.
    pub fn new(quick: bool, base_seed: u64, corrupt: bool) -> Self {
        Self {
            quick,
            base_seed,
            runs: if quick { 4 } else { 16 },
            corrupt,
            threads: 1,
        }
    }

    /// Sets the worker-thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The family × size × seed grid, plus a uniform-random baseline column
/// ([`GameSpec::Random`]) so the legacy generator is fuzzed too.
///
/// The full (nightly) grid is sized for the parallel sweep: every size
/// up to the paper's 8-action benchmarks × 10 seeds per family (~3.5×
/// the pre-parallel grid's points, ~4.7× its solver runs with the
/// full-run budget of 16, at roughly double the per-run cost at the
/// top sizes).
pub fn family_grid(opts: &DiffOptions) -> Vec<GameSpec> {
    use cnash_game::families::Family;
    let sizes: &[usize] = if opts.quick {
        &[2, 3]
    } else {
        &[2, 3, 4, 5, 6, 7, 8]
    };
    let seeds = if opts.quick { 2u64 } else { 10 };
    let mut grid = Vec::new();
    for family in Family::ALL {
        for &size in sizes {
            for s in 0..seeds {
                grid.push(GameSpec::Family {
                    family: family.name().into(),
                    size,
                    rows: None,
                    cols: None,
                    scale: None,
                    knob: None,
                    seed: opts.base_seed.wrapping_add(s),
                });
            }
        }
    }
    for &size in sizes {
        for s in 0..seeds {
            grid.push(GameSpec::Random {
                rows: size,
                cols: size,
                max_payoff: 6,
                seed: opts.base_seed.wrapping_add(s),
            });
        }
    }
    grid
}

/// The solver suite swept per grid point: both C-Nash presets, the
/// S-QUBO baseline, and the classical CFR column (external-sampling
/// regret matching through the generic `Game` trait — its per-point
/// exploitability is gated by [`CFR_EXPLOITABILITY_TOL`]).
pub fn solver_suite(opts: &DiffOptions) -> Vec<SolverSpec> {
    let iterations = if opts.quick { 800 } else { 3000 };
    let cfr_iterations = if opts.quick { 20_000 } else { 60_000 };
    vec![
        SolverSpec::CNash {
            config: ConfigSpec::ideal(12).with_iterations(iterations),
            hardware_seed: 1,
        },
        SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(iterations),
            hardware_seed: 1,
        },
        SolverSpec::DWave {
            model: "2000q".into(),
            reads_per_run: 1,
        },
        SolverSpec::Cfr {
            iterations: cfr_iterations,
        },
    ]
}

/// Counters of one sweep (all mismatch classes surfaced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffCounters {
    /// Grid points checked.
    pub points: usize,
    /// Ground-truth equilibria enumerated across the grid.
    pub oracle_equilibria: usize,
    /// Lemke–Howson solutions cross-checked against enumeration.
    pub lh_cross_checked: usize,
    /// Grid points where the exact-rational oracle ran its cross-check
    /// (every point whose game fits the enumeration bound).
    pub exact_points: usize,
    /// Float-oracle results the exact arithmetic refuted (each one also
    /// stops the sweep with an `exact_oracle_disagreement` failure).
    pub exact_disagreements: usize,
    /// Solver runs executed.
    pub solver_runs: usize,
    /// Runs claiming an equilibrium hit.
    pub claimed_hits: usize,
    /// Claimed hits that certificate-verified *and* matched an
    /// enumerated equilibrium.
    pub verified_hits: usize,
    /// Claimed hits that certificate-verified but matched no enumerated
    /// equilibrium (possible on degenerate games — counted, allowed).
    pub unlisted_valid_hits: usize,
    /// Unlisted-valid hits structurally matched to an enumerated
    /// continuum representative (support-pair class — see
    /// `cnash_game::SupportClass`).
    pub unlisted_classified_hits: usize,
    /// Unlisted-valid hits matching no known support-pair class — a
    /// continuum the oracle failed to characterise (counted, surfaced
    /// in the summary, gated to zero on the quick grid in CI).
    pub unlisted_unclassified_hits: usize,
    /// Runs that found nothing (missed but allowed — the solvers are
    /// stochastic).
    pub missed_runs: usize,
}

impl DiffCounters {
    /// Adds `other`'s counts into `self` (grid-order folding). The
    /// exhaustive destructuring makes forgetting a new field here a
    /// compile error, not a counter that silently folds to zero.
    fn absorb(&mut self, other: &DiffCounters) {
        let DiffCounters {
            points,
            oracle_equilibria,
            lh_cross_checked,
            exact_points,
            exact_disagreements,
            solver_runs,
            claimed_hits,
            verified_hits,
            unlisted_valid_hits,
            unlisted_classified_hits,
            unlisted_unclassified_hits,
            missed_runs,
        } = *other;
        self.points += points;
        self.oracle_equilibria += oracle_equilibria;
        self.lh_cross_checked += lh_cross_checked;
        self.exact_points += exact_points;
        self.exact_disagreements += exact_disagreements;
        self.solver_runs += solver_runs;
        self.claimed_hits += claimed_hits;
        self.verified_hits += verified_hits;
        self.unlisted_valid_hits += unlisted_valid_hits;
        self.unlisted_classified_hits += unlisted_classified_hits;
        self.unlisted_unclassified_hits += unlisted_unclassified_hits;
        self.missed_runs += missed_runs;
    }
}

/// The mismatch classes that fail a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// A solver claimed a hit the certificate rejects.
    FalseEquilibrium,
    /// The float oracles disagree with each other (or enumeration found
    /// no equilibrium at all).
    OracleDisagreement,
    /// The exact-rational trust anchor refuted a float-oracle result:
    /// either a float-enumerated equilibrium whose exact regret exceeds
    /// the claiming tolerance, or an exactly-certified equilibrium that
    /// fails float verification. The failure detail records which
    /// oracle witnessed the refutation (`[witness: float]` /
    /// `[witness: exact]`).
    ExactOracleDisagreement,
}

impl FailureClass {
    /// Stable wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::FalseEquilibrium => "false_equilibrium",
            FailureClass::OracleDisagreement => "oracle_disagreement",
            FailureClass::ExactOracleDisagreement => "exact_oracle_disagreement",
        }
    }
}

/// A reproducible sweep failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Mismatch class.
    pub class: FailureClass,
    /// Human-readable description (game, solver, seed, regrets).
    pub detail: String,
    /// Minimized single-job jobs file reproducing the failure
    /// (explicit payoffs — self-contained).
    pub counterexample: BatchSpec,
}

/// Result of one sweep: counters, the continuum-class histogram and the
/// first failure, if any.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Aggregate counters.
    pub counters: DiffCounters,
    /// Support-pair class label → unlisted-valid hits matched to it.
    /// Hits no class explains are keyed `"?<own class>"`.
    pub continuum_classes: BTreeMap<String, usize>,
    /// The first failure encountered (the sweep stops there).
    pub failure: Option<Failure>,
    /// Grid points the CFR column ran on (0 when the suite has no CFR
    /// entry).
    pub cfr_points: usize,
    /// Worst per-point CFR convergence across the grid: the max over
    /// points of the *best* run's exact exploitability (min over that
    /// point's CFR runs of `RunOutcome::measured_objective`). Both
    /// reductions are commutative, so the value is bit-identical at any
    /// thread count. `0.0` when no CFR ran.
    pub cfr_exploitability_max: f64,
    /// Per-grid-point wall-time distribution (nanoseconds), folded
    /// bucket-wise so the snapshot is identical whatever order workers
    /// finished in. Wall-clock, so *values* vary run to run — the
    /// summary exposes it only under `timing_`-prefixed keys, which
    /// golden comparisons strip ([`strip_timing_keys`], CI's
    /// `grep -v '"timing_'`). On a cancelled sweep the count may
    /// exceed `counters.points`: in-flight points past the first
    /// failure are discarded from the fold but their time was spent.
    pub point_timing: HistSnapshot,
}

/// Machine-readable sweep summary (stdout of the `diffcheck` binary).
pub fn summary_json(outcome: &DiffOutcome) -> Json {
    let c = &outcome.counters;
    let n = |v: usize| Json::num(v as f64);
    let mut obj = vec![
        ("points".to_string(), n(c.points)),
        ("oracle_equilibria".to_string(), n(c.oracle_equilibria)),
        ("lh_cross_checked".to_string(), n(c.lh_cross_checked)),
        ("exact_points".to_string(), n(c.exact_points)),
        ("exact_disagreements".to_string(), n(c.exact_disagreements)),
        ("solver_runs".to_string(), n(c.solver_runs)),
        ("claimed_hits".to_string(), n(c.claimed_hits)),
        ("verified_hits".to_string(), n(c.verified_hits)),
        ("unlisted_valid_hits".to_string(), n(c.unlisted_valid_hits)),
        (
            "unlisted_classified_hits".to_string(),
            n(c.unlisted_classified_hits),
        ),
        (
            "unlisted_unclassified_hits".to_string(),
            n(c.unlisted_unclassified_hits),
        ),
        // Gate alias: the headline count CI and the nightly full grid
        // drive to zero now that exact support classes absorb the
        // continua the float oracle cannot characterise.
        ("unclassified".to_string(), n(c.unlisted_unclassified_hits)),
        (
            "continuum_classes".to_string(),
            Json::Obj(
                outcome
                    .continuum_classes
                    .iter()
                    .map(|(label, count)| (label.clone(), n(*count)))
                    .collect(),
            ),
        ),
        ("missed_runs".to_string(), n(c.missed_runs)),
        ("cfr_points".to_string(), n(outcome.cfr_points)),
        (
            "cfr_exploitability_max".to_string(),
            Json::num(outcome.cfr_exploitability_max),
        ),
        (
            "cfr_exploitability_ok".to_string(),
            Json::Bool(
                outcome.cfr_points == 0 || outcome.cfr_exploitability_max <= CFR_EXPLOITABILITY_TOL,
            ),
        ),
        ("ok".to_string(), Json::Bool(outcome.failure.is_none())),
    ];
    // Wall-clock per-point timing rides along under a `timing_` prefix:
    // flat scalar keys so the pretty form keeps one line per key and
    // byte-level comparisons can drop them all with one filter
    // (`strip_timing_keys` in tests, `grep -v '"timing_'` in CI).
    let t = &outcome.point_timing;
    let us = |ns: u64| Json::uint(ns / 1_000);
    obj.push(("timing_points_measured".into(), Json::uint(t.count)));
    obj.push(("timing_point_us_total".into(), us(t.sum)));
    obj.push((
        "timing_point_us_mean".into(),
        Json::num((t.mean() / 1_000.0 * 10.0).round() / 10.0),
    ));
    obj.push(("timing_point_us_p50".into(), us(t.quantile(0.50))));
    obj.push(("timing_point_us_p90".into(), us(t.quantile(0.90))));
    obj.push(("timing_point_us_p99".into(), us(t.quantile(0.99))));
    obj.push((
        "timing_point_us_max".into(),
        us(if t.count == 0 { 0 } else { t.max }),
    ));
    if let Some(f) = &outcome.failure {
        obj.push(("failure_class".into(), Json::str(f.class.name())));
        obj.push(("failure_detail".into(), Json::str(f.detail.clone())));
    }
    Json::Obj(obj.into_iter().collect())
}

/// Removes every top-level `timing_`-prefixed key from a summary — the
/// in-process mirror of CI's `grep -v '"timing_'` filter, for tests
/// that compare summaries byte-for-byte across thread counts or runs.
pub fn strip_timing_keys(doc: &mut Json) {
    if let Json::Obj(map) = doc {
        map.retain(|key, _| !key.starts_with("timing_"));
    }
}

/// The worst-response corruption: all mass on the row action with the
/// *lowest* payoff against `q` — the most wrong pure claim available.
pub fn worst_response(game: &BimatrixGame, q: &MixedStrategy) -> MixedStrategy {
    let payoffs = game
        .row_payoff_vector(q)
        .expect("profile shapes match the game");
    let worst = payoffs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite payoffs"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    MixedStrategy::pure(game.row_actions(), worst).expect("non-empty action set")
}

/// A deliberately lying solver: claimed hits keep their claim flag but
/// have the row strategy swapped for the worst response — the test hook
/// proving the differential pipeline catches false equilibria.
pub struct CorruptingSolver {
    inner: Box<dyn NashSolver>,
}

impl CorruptingSolver {
    /// Wraps `inner`.
    pub fn new(inner: Box<dyn NashSolver>) -> Self {
        Self { inner }
    }
}

impl NashSolver for CorruptingSolver {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn game(&self) -> &dyn Game {
        self.inner.game()
    }

    fn run(&self, seed: u64) -> cnash_core::RunOutcome {
        let mut out = self.inner.run(seed);
        if out.is_equilibrium {
            if let Some((_, q)) = out.profile.take().and_then(Profile::into_pair) {
                let game = self
                    .inner
                    .game()
                    .as_bimatrix()
                    .expect("diffcheck sweeps bimatrix games");
                let lie = worst_response(game, &q);
                out.profile = Some(Profile::pair(lie, q));
            }
        }
        out
    }
}

fn build_solver(
    spec: &SolverSpec,
    game: &BimatrixGame,
    corrupt: bool,
) -> Result<Box<dyn NashSolver>, SpecError> {
    let solver = spec.build(game)?;
    Ok(if corrupt {
        Box::new(CorruptingSolver::new(solver))
    } else {
        solver
    })
}

/// Deterministic per-(point, solver) run-seed base: mixing the game's
/// canonical fingerprint and the solver spec decorrelates the grid
/// while keeping every failing seed replayable from the jobs file.
fn run_seed_base(base_seed: u64, game: &BimatrixGame, solver: &SolverSpec) -> u64 {
    let mut h = Hasher64::new();
    h.write_str("diffcheck-runs")
        .write_u64(base_seed)
        .write_u64(game.canonical_fingerprint())
        .write_str(&format!("{solver:?}"));
    h.finish()
}

/// `Some(detail)` if the claimed profile fails independent certificate
/// verification — the false-equilibrium predicate.
fn claim_rejected(game: &BimatrixGame, p: &MixedStrategy, q: &MixedStrategy) -> Option<String> {
    match Certificate::build(game, p.clone(), q.clone(), CLAIM_TOL) {
        Err(e) => Some(format!("certificate construction failed: {e}")),
        Ok(cert) if !cert.is_valid() => Some(format!(
            "claimed equilibrium has regrets ({:.3e}, {:.3e}) above {CLAIM_TOL:.0e}",
            cert.regrets.0, cert.regrets.1
        )),
        Ok(_) => None,
    }
}

/// `true` if running `solver_spec` (optionally corrupted) at `seed` on
/// `game` still produces a certificate-rejected claim — the predicate
/// counterexample minimization shrinks against.
fn reproduces(game: &BimatrixGame, solver_spec: &SolverSpec, seed: u64, corrupt: bool) -> bool {
    let Ok(solver) = build_solver(solver_spec, game, corrupt) else {
        return false;
    };
    let out = solver.run(seed);
    match (out.is_equilibrium, out.pair()) {
        (true, Some((p, q))) => claim_rejected(game, p, q).is_some(),
        _ => false,
    }
}

fn drop_row(game: &BimatrixGame, i: usize) -> Option<BimatrixGame> {
    sub_game(game, |r, _| r != i, |_, _| true)
}

fn drop_col(game: &BimatrixGame, j: usize) -> Option<BimatrixGame> {
    sub_game(game, |_, _| true, |c, _| c != j)
}

fn sub_game(
    game: &BimatrixGame,
    keep_row: impl Fn(usize, usize) -> bool,
    keep_col: impl Fn(usize, usize) -> bool,
) -> Option<BimatrixGame> {
    let filter = |m: &Matrix| -> Vec<Vec<f64>> {
        (0..m.rows())
            .filter(|&r| keep_row(r, m.rows()))
            .map(|r| {
                m.row(r)
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| keep_col(*c, m.cols()))
                    .map(|(_, &v)| v)
                    .collect()
            })
            .collect()
    };
    let rows = filter(game.row_payoffs());
    if rows.is_empty() || rows[0].is_empty() {
        return None;
    }
    BimatrixGame::new(
        format!("{}~min", game.name().trim_end_matches("~min")),
        Matrix::from_rows(&rows).ok()?,
        Matrix::from_rows(&filter(game.col_payoffs())).ok()?,
    )
    .ok()
}

/// One greedy action-deletion step: the first single row (then column)
/// whose removal still reproduces the failure.
fn try_action_deletion(
    current: &BimatrixGame,
    still_fails: &impl Fn(&BimatrixGame) -> bool,
) -> Option<BimatrixGame> {
    if current.row_actions() > 1 {
        for i in 0..current.row_actions() {
            if let Some(cand) = drop_row(current, i) {
                if still_fails(&cand) {
                    return Some(cand);
                }
            }
        }
    }
    if current.col_actions() > 1 {
        for j in 0..current.col_actions() {
            if let Some(cand) = drop_col(current, j) {
                if still_fails(&cand) {
                    return Some(cand);
                }
            }
        }
    }
    None
}

/// Rebuilds `game` with both payoff matrices mapped through `f`
/// (name preserved — the `~min` marker is applied by deletion).
fn map_payoffs(game: &BimatrixGame, f: impl Fn(f64) -> f64) -> Option<BimatrixGame> {
    BimatrixGame::new(
        game.name().to_string(),
        game.row_payoffs().map(&f),
        game.col_payoffs().map(&f),
    )
    .ok()
}

/// One scale-reduction step: halving every payoff (truncated toward
/// zero, keeping integer payoffs integer) while the failure reproduces.
fn try_scale_reduction(
    current: &BimatrixGame,
    still_fails: &impl Fn(&BimatrixGame) -> bool,
) -> Option<BimatrixGame> {
    let halved = map_payoffs(current, |v| (v / 2.0).trunc())?;
    let unchanged = halved.row_payoffs() == current.row_payoffs()
        && halved.col_payoffs() == current.col_payoffs();
    (!unchanged && still_fails(&halved)).then_some(halved)
}

/// One payoff-zeroing step: the first nonzero cell (row matrix first,
/// row-major) whose zeroing still reproduces the failure.
fn try_payoff_zeroing(
    current: &BimatrixGame,
    still_fails: &impl Fn(&BimatrixGame) -> bool,
) -> Option<BimatrixGame> {
    for which in 0..2 {
        let m = if which == 0 {
            current.row_payoffs()
        } else {
            current.col_payoffs()
        };
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                if m[(r, c)] == 0.0 {
                    continue;
                }
                let mut zeroed = m.clone();
                zeroed[(r, c)] = 0.0;
                let cand = if which == 0 {
                    BimatrixGame::new(
                        current.name().to_string(),
                        zeroed,
                        current.col_payoffs().clone(),
                    )
                } else {
                    BimatrixGame::new(
                        current.name().to_string(),
                        current.row_payoffs().clone(),
                        zeroed,
                    )
                };
                if let Ok(cand) = cand {
                    if still_fails(&cand) {
                        return Some(cand);
                    }
                }
            }
        }
    }
    None
}

/// Greedy delta-debugging to a fixpoint: alternates action deletion,
/// payoff-scale halving (toward 0) and single-cell payoff zeroing,
/// keeping each candidate only while the failure predicate still
/// reproduces. Deterministic: passes and candidates are tried in a
/// fixed order, so the same input always shrinks to the same game.
pub fn minimize(game: &BimatrixGame, still_fails: impl Fn(&BimatrixGame) -> bool) -> BimatrixGame {
    let mut current = game.clone();
    loop {
        if let Some(next) = try_action_deletion(&current, &still_fails) {
            current = next;
            continue;
        }
        if let Some(next) = try_scale_reduction(&current, &still_fails) {
            current = next;
            continue;
        }
        if let Some(next) = try_payoff_zeroing(&current, &still_fails) {
            current = next;
            continue;
        }
        return current;
    }
}

/// Packages a minimized failure as a single-run, explicit-payoff,
/// replayable jobs file.
fn counterexample(game: &BimatrixGame, solver: &SolverSpec, seed: u64, label: String) -> BatchSpec {
    BatchSpec {
        jobs: vec![JobSpec {
            game: GameSpec::from_game(game),
            solver: solver.clone(),
            runs: 1,
            base_seed: seed,
            early_stop: None,
            label: Some(label),
        }],
        stop: PortfolioStop::Independent,
        threads: 1,
    }
}

/// Oracle spec used for oracle-disagreement counterexamples (replay
/// recomputes both oracles on the captured game; the solver entry is a
/// cheap placeholder so the jobs file stays loadable everywhere).
fn oracle_placeholder_solver() -> SolverSpec {
    SolverSpec::Ideal {
        config: ConfigSpec::ideal(12).with_iterations(1),
    }
}

fn check_oracles(
    game: &BimatrixGame,
    counters: &mut DiffCounters,
) -> Result<Vec<Equilibrium>, Failure> {
    let truth = enumerate_equilibria(game, 1e-9);
    if truth.is_empty() {
        return Err(Failure {
            class: FailureClass::OracleDisagreement,
            detail: format!(
                "{}: support enumeration found no equilibrium (Nash's theorem \
                 guarantees one) [witness: float]",
                game.name()
            ),
            counterexample: counterexample(
                game,
                &oracle_placeholder_solver(),
                0,
                format!(
                    "diffcheck oracle_disagreement: {} [witness: float]",
                    game.name()
                ),
            ),
        });
    }
    counters.oracle_equilibria += truth.len();
    for eq in lemke_howson_all_labels(game) {
        counters.lh_cross_checked += 1;
        let cert_ok = Certificate::build(game, eq.row.clone(), eq.col.clone(), ORACLE_TOL)
            .map(|c| c.is_valid())
            .unwrap_or(false);
        let enumerated = truth.iter().any(|t| t.same_profile(&eq, 1e-5));
        if !cert_ok || !enumerated {
            let game_min = minimize(game, |g| {
                let t = enumerate_equilibria(g, 1e-9);
                lemke_howson_all_labels(g).iter().any(|e| {
                    let ok = Certificate::build(g, e.row.clone(), e.col.clone(), ORACLE_TOL)
                        .map(|c| c.is_valid())
                        .unwrap_or(false);
                    !ok || !t.iter().any(|x| x.same_profile(e, 1e-5))
                })
            });
            return Err(Failure {
                class: FailureClass::OracleDisagreement,
                detail: format!(
                    "{}: Lemke–Howson solution {eq} {} [witness: float]",
                    game.name(),
                    if cert_ok {
                        "is missing from the enumerated equilibrium set"
                    } else {
                        "fails certificate verification"
                    }
                ),
                counterexample: counterexample(
                    &game_min,
                    &oracle_placeholder_solver(),
                    0,
                    format!(
                        "diffcheck oracle_disagreement: {} [witness: float]",
                        game.name()
                    ),
                ),
            });
        }
    }
    Ok(truth)
}

/// One direction-of-trust cross-check of the float truth against the
/// exact-rational oracle. `Ok` carries the exact equilibria's
/// support-pair classes (for merging into the continuum
/// representatives); `Err` carries `(detail, witness)` where the
/// witness names the oracle whose result the refutation rests on.
///
/// Trust flows one way: every exactly-certified equilibrium must pass
/// float verification (witness `exact` if not — the float pipeline is
/// broken), and every float-enumerated equilibrium must either match
/// the exact set (profile distance, or containment in an exact class)
/// or — as a borderline ε-point — survive exact substitution with a
/// regret inside the claiming tolerance (witness `float` if not — the
/// float oracle listed a non-equilibrium).
fn exact_cross_check(
    game: &BimatrixGame,
    truth: &[Equilibrium],
) -> Result<Vec<SupportClass>, (String, &'static str)> {
    let exact = enumerate_exact(game);
    let mut converted = Vec::with_capacity(exact.len());
    for ee in &exact {
        let eq = ee
            .to_equilibrium(game)
            .map_err(|e| (format!("exact profile does not fit the game: {e}"), "exact"))?;
        if !game.is_equilibrium(&eq.row, &eq.col, CLAIM_TOL) {
            return Err((
                format!(
                    "exactly-certified equilibrium {eq} fails float verification at {CLAIM_TOL:.0e}"
                ),
                "exact",
            ));
        }
        converted.push(eq);
    }
    let classes = continuum_representatives(game, &converted, CLASS_TOL)
        .map_err(|e| (format!("exact continuum representatives: {e}"), "exact"))?;
    let bound = Rat::from_f64(CLAIM_TOL).expect("tolerance is finite");
    for t in truth {
        let matched = converted.iter().any(|e| t.same_profile(e, MATCH_TOL))
            || classes
                .iter()
                .any(|c| c.contains_profile(&t.row, &t.col, SUPPORT_TOL));
        if matched {
            continue;
        }
        let regret = exact_profile_regret(game, &t.row, &t.col);
        if regret > bound {
            return Err((
                format!(
                    "float-enumerated equilibrium {t} refuted by exact substitution \
                     (exact regret ~{:.3e} > {CLAIM_TOL:.0e})",
                    regret.to_f64()
                ),
                "float",
            ));
        }
    }
    Ok(classes)
}

/// Runs the exact-oracle cross-check on one grid point (skipped — with
/// no `exact_points` tick — only when the game exceeds the enumeration
/// bound). On disagreement the game is minimized against the
/// cross-check predicate and packaged as a replayable counterexample
/// whose label and detail record the witnessing oracle.
fn check_exact_oracle(
    game: &BimatrixGame,
    truth: &[Equilibrium],
    counters: &mut DiffCounters,
) -> Result<Vec<SupportClass>, Failure> {
    if game.row_actions() > MAX_ENUM_ACTIONS || game.col_actions() > MAX_ENUM_ACTIONS {
        return Ok(Vec::new());
    }
    counters.exact_points += 1;
    match exact_cross_check(game, truth) {
        Ok(classes) => Ok(classes),
        Err((why, witness)) => {
            counters.exact_disagreements += 1;
            let game_min = minimize(game, |g| {
                g.row_actions() <= MAX_ENUM_ACTIONS
                    && g.col_actions() <= MAX_ENUM_ACTIONS
                    && exact_cross_check(g, &enumerate_equilibria(g, 1e-9)).is_err()
            });
            Err(Failure {
                class: FailureClass::ExactOracleDisagreement,
                detail: format!("{}: {why} [witness: {witness}]", game.name()),
                counterexample: counterexample(
                    &game_min,
                    &oracle_placeholder_solver(),
                    0,
                    format!(
                        "diffcheck exact_oracle_disagreement: {} [witness: {witness}]",
                        game.name()
                    ),
                ),
            })
        }
    }
}

/// Merges additional support-pair classes into the continuum
/// representatives, deduplicating and restoring sorted order (so the
/// per-point result stays bit-reproducible whatever oracle contributed
/// which class).
fn merge_classes(reps: &mut Vec<SupportClass>, extra: Vec<SupportClass>) {
    for class in extra {
        if !reps.contains(&class) {
            reps.push(class);
        }
    }
    reps.sort();
}

/// Classifies a certificate-valid hit absent from the enumerated set
/// against the oracle's continuum representatives: first by exact
/// support-pair-class equality, then by support containment in a class.
fn classify_unlisted(
    game: &BimatrixGame,
    reps: &[SupportClass],
    p: &MixedStrategy,
    q: &MixedStrategy,
    counters: &mut DiffCounters,
    classes: &mut BTreeMap<String, usize>,
) {
    counters.unlisted_valid_hits += 1;
    let own = SupportClass::of_profile(game, p, q, CLASS_TOL).ok();
    let matched = reps
        .iter()
        .find(|c| Some(*c) == own.as_ref())
        .or_else(|| reps.iter().find(|c| c.contains_profile(p, q, SUPPORT_TOL)));
    let label = match matched {
        Some(class) => {
            counters.unlisted_classified_hits += 1;
            class.label()
        }
        None => {
            counters.unlisted_unclassified_hits += 1;
            format!(
                "?{}",
                own.map_or_else(|| "r{}xc{}".to_string(), |c| c.label())
            )
        }
    };
    *classes.entry(label).or_insert(0) += 1;
}

#[allow(clippy::too_many_arguments)]
fn check_run(
    game: &BimatrixGame,
    truth: &[Equilibrium],
    reps: &[SupportClass],
    solver_spec: &SolverSpec,
    solver: &dyn NashSolver,
    seed: u64,
    corrupt: bool,
    counters: &mut DiffCounters,
    classes: &mut BTreeMap<String, usize>,
    cfr_best: &mut Option<f64>,
) -> Option<Failure> {
    counters.solver_runs += 1;
    let out = solver.run(seed);
    if matches!(solver_spec, SolverSpec::Cfr { .. }) {
        // The CFR column's convergence metric: the exact exploitability
        // of the returned (average or claimed) profile, best run wins.
        let x = out.measured_objective;
        *cfr_best = Some(cfr_best.map_or(x, |best| best.min(x)));
    }
    let claimed = out.is_equilibrium;
    let Some((p, q)) = out.profile.and_then(Profile::into_pair) else {
        counters.missed_runs += 1;
        return None;
    };
    if !claimed {
        counters.missed_runs += 1;
        return None;
    }
    counters.claimed_hits += 1;
    if let Some(why) = claim_rejected(game, &p, &q) {
        let game_min = minimize(game, |g| reproduces(g, solver_spec, seed, corrupt));
        let label = format!(
            "diffcheck false_equilibrium: {} via {} seed {seed} [witness: float]",
            game.name(),
            solver_spec.label()
        );
        return Some(Failure {
            class: FailureClass::FalseEquilibrium,
            detail: format!(
                "{} via {} (run seed {seed}): {why} [witness: float]",
                game.name(),
                solver_spec.label()
            ),
            counterexample: counterexample(&game_min, solver_spec, seed, label),
        });
    }
    if truth
        .iter()
        .any(|t| t.row.linf_distance(&p) < MATCH_TOL && t.col.linf_distance(&q) < MATCH_TOL)
    {
        counters.verified_hits += 1;
    } else {
        classify_unlisted(game, reps, &p, &q, counters, classes);
    }
    None
}

/// Everything one grid point contributes to a sweep, computed
/// independently of every other point so the pool can fan points out.
#[derive(Debug, Default)]
struct PointOutcome {
    counters: DiffCounters,
    classes: BTreeMap<String, usize>,
    failure: Option<Failure>,
    /// Best (minimum over runs) exact CFR exploitability at this point;
    /// `None` when the suite has no CFR column.
    cfr_exploitability: Option<f64>,
}

/// Checks one grid point end to end: oracle self-consistency, then
/// every solver × run with certificate verification and continuum
/// classification. Stops at the point's first failure (minimized).
fn check_point(
    spec: &GameSpec,
    solvers: &[SolverSpec],
    opts: &DiffOptions,
) -> Result<PointOutcome, SpecError> {
    let mut out = PointOutcome::default();
    let game = spec.build()?;
    out.counters.points += 1;
    let truth = match check_oracles(&game, &mut out.counters) {
        Ok(truth) => truth,
        Err(failure) => {
            out.failure = Some(failure);
            return Ok(out);
        }
    };
    let mut reps = continuum_representatives(&game, &truth, CLASS_TOL).map_err(|e| SpecError {
        message: format!("continuum representatives: {e}"),
    })?;
    match check_exact_oracle(&game, &truth, &mut out.counters) {
        Ok(exact_classes) => merge_classes(&mut reps, exact_classes),
        Err(failure) => {
            out.failure = Some(failure);
            return Ok(out);
        }
    }
    for solver_spec in solvers {
        let solver = build_solver(solver_spec, &game, opts.corrupt)?;
        let base = run_seed_base(opts.base_seed, &game, solver_spec);
        for k in 0..opts.runs {
            if let Some(failure) = check_run(
                &game,
                &truth,
                &reps,
                solver_spec,
                solver.as_ref(),
                base.wrapping_add(k as u64),
                opts.corrupt,
                &mut out.counters,
                &mut out.classes,
                &mut out.cfr_exploitability,
            ) {
                out.failure = Some(failure);
                return Ok(out);
            }
        }
    }
    Ok(out)
}

/// Sweeps the grid on the `cnash-runtime` worker pool: each grid point
/// runs as an independent job ([`DiffOptions::threads`] workers, `0` =
/// all cores), and per-point results are **folded in grid order** —
/// idle workers claim whatever point is next, but the summary counters,
/// the continuum-class histogram and the first failure (already
/// minimized into a replayable jobs file) are bit-identical to a
/// single-threaded sweep. The sweep stops at the first failing point in
/// grid order; later points already in flight are cancelled and their
/// results discarded.
///
/// # Errors
///
/// Returns [`SpecError`] if a grid spec itself cannot be built — a
/// configuration bug, not a differential finding.
pub fn run_grid(
    points: &[GameSpec],
    solvers: &[SolverSpec],
    opts: &DiffOptions,
) -> Result<DiffOutcome, SpecError> {
    let mut counters = DiffCounters::default();
    let mut classes = BTreeMap::new();
    let mut failure = None;
    let mut spec_err = None;
    let mut cfr_points = 0usize;
    let mut cfr_exploitability_max = 0.0f64;
    let cancel = CancelToken::new();
    // Timed on the worker, folded bucket-wise: the log-bucketed
    // histogram merge is commutative, so the timing snapshot does not
    // depend on which worker finished which point first.
    let timing = Histogram::new();
    fan_out_ordered(
        points.len(),
        opts.threads,
        &cancel,
        |k| {
            let started = Instant::now();
            let result = check_point(&points[k], solvers, opts);
            timing.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            result
        },
        |_, result| match result {
            Err(e) => {
                spec_err = Some(e);
                ControlFlow::Break(())
            }
            Ok(point) => {
                counters.absorb(&point.counters);
                for (label, count) in point.classes {
                    *classes.entry(label).or_insert(0) += count;
                }
                if let Some(x) = point.cfr_exploitability {
                    cfr_points += 1;
                    cfr_exploitability_max = cfr_exploitability_max.max(x);
                }
                match point.failure {
                    Some(f) => {
                        failure = Some(f);
                        ControlFlow::Break(())
                    }
                    None => ControlFlow::Continue(()),
                }
            }
        },
    );
    if let Some(e) = spec_err {
        return Err(e);
    }
    Ok(DiffOutcome {
        counters,
        continuum_classes: classes,
        failure,
        cfr_points,
        cfr_exploitability_max,
        point_timing: timing.snapshot(),
    })
}

/// Replays a (counterexample) jobs file: re-runs every job's seeds and
/// certificate-checks each claimed hit, plus the oracle cross-check on
/// every game small enough to enumerate. Used to reproduce nightly
/// artifacts locally.
///
/// # Errors
///
/// Returns [`SpecError`] if a job's game or solver cannot be built.
pub fn replay(spec: &BatchSpec, corrupt: bool) -> Result<DiffOutcome, SpecError> {
    let mut counters = DiffCounters::default();
    let mut classes = BTreeMap::new();
    let mut cfr_points = 0usize;
    let mut cfr_exploitability_max = 0.0f64;
    let timing = Histogram::new();
    for job in &spec.jobs {
        let job_started = Instant::now();
        let game = job.game.build()?;
        counters.points += 1;
        let truth = match check_oracles(&game, &mut counters) {
            Ok(truth) => truth,
            Err(failure) => {
                timing.record(u64::try_from(job_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                return Ok(DiffOutcome {
                    counters,
                    continuum_classes: classes,
                    failure: Some(failure),
                    cfr_points,
                    cfr_exploitability_max,
                    point_timing: timing.snapshot(),
                });
            }
        };
        let mut reps =
            continuum_representatives(&game, &truth, CLASS_TOL).map_err(|e| SpecError {
                message: format!("continuum representatives: {e}"),
            })?;
        match check_exact_oracle(&game, &truth, &mut counters) {
            Ok(exact_classes) => merge_classes(&mut reps, exact_classes),
            Err(failure) => {
                timing.record(u64::try_from(job_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                return Ok(DiffOutcome {
                    counters,
                    continuum_classes: classes,
                    failure: Some(failure),
                    cfr_points,
                    cfr_exploitability_max,
                    point_timing: timing.snapshot(),
                });
            }
        }
        let solver = build_solver(&job.solver, &game, corrupt)?;
        let mut cfr_best = None;
        for k in 0..job.runs {
            if let Some(failure) = check_run(
                &game,
                &truth,
                &reps,
                &job.solver,
                solver.as_ref(),
                job.base_seed.wrapping_add(k as u64),
                corrupt,
                &mut counters,
                &mut classes,
                &mut cfr_best,
            ) {
                timing.record(u64::try_from(job_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                return Ok(DiffOutcome {
                    counters,
                    continuum_classes: classes,
                    failure: Some(failure),
                    cfr_points,
                    cfr_exploitability_max,
                    point_timing: timing.snapshot(),
                });
            }
        }
        if let Some(x) = cfr_best {
            cfr_points += 1;
            cfr_exploitability_max = cfr_exploitability_max.max(x);
        }
        timing.record(u64::try_from(job_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    Ok(DiffOutcome {
        counters,
        continuum_classes: classes,
        failure: None,
        cfr_points,
        cfr_exploitability_max,
        point_timing: timing.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominance_point(size: usize) -> GameSpec {
        GameSpec::Family {
            family: "dominance_solvable".into(),
            size,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed: 3,
        }
    }

    fn ideal_solver(iterations: usize) -> SolverSpec {
        SolverSpec::CNash {
            config: ConfigSpec::ideal(12).with_iterations(iterations),
            hardware_seed: 1,
        }
    }

    #[test]
    fn honest_solvers_verify_on_a_known_target() {
        let opts = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 3,
            corrupt: false,
            threads: 1,
        };
        let outcome = run_grid(&[dominance_point(2)], &[ideal_solver(800)], &opts).unwrap();
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        let c = outcome.counters;
        assert_eq!(c.points, 1);
        assert_eq!(c.solver_runs, 3);
        assert_eq!(c.claimed_hits + c.missed_runs, 3);
        assert!(
            c.claimed_hits > 0,
            "dominance-solvable 2x2 must be hit within 3 runs"
        );
        // Dominance-solvable truth is a single pure profile: every
        // verified hit matched it, nothing can be unlisted.
        assert_eq!(c.verified_hits, c.claimed_hits);
        assert_eq!(c.unlisted_valid_hits, 0);
        assert_eq!(c.oracle_equilibria, 1);
    }

    #[test]
    fn corrupt_hook_is_caught_minimized_and_replayable() {
        let opts = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 6,
            corrupt: true,
            threads: 1,
        };
        let outcome = run_grid(&[dominance_point(3)], &[ideal_solver(1200)], &opts).unwrap();
        let failure = outcome.failure.expect("the lying solver must be caught");
        assert_eq!(failure.class, FailureClass::FalseEquilibrium);
        assert!(failure.detail.contains("regrets"), "{}", failure.detail);

        // The counterexample is a self-contained, minimized jobs file.
        let jobs = &failure.counterexample;
        assert_eq!(jobs.jobs.len(), 1);
        assert_eq!(jobs.jobs[0].runs, 1);
        let min_game = jobs.jobs[0].game.build().unwrap();
        assert!(
            min_game.row_actions() + min_game.col_actions() < 6,
            "minimization must shrink the 3x3 game, got {}x{}",
            min_game.row_actions(),
            min_game.col_actions()
        );

        // Round-trip through the serialized jobs file, then replay:
        // corrupt replay reproduces the failure, honest replay is clean.
        let text = jobs.to_json().pretty();
        let parsed = BatchSpec::from_json(&text).unwrap();
        let again = replay(&parsed, true).unwrap();
        let refailure = again.failure.expect("replay must reproduce");
        assert_eq!(refailure.class, FailureClass::FalseEquilibrium);
        let honest = replay(&parsed, false).unwrap();
        assert!(honest.failure.is_none(), "{:?}", honest.failure);
    }

    #[test]
    fn summary_json_reports_failure_class() {
        let clean = DiffOutcome {
            counters: DiffCounters {
                points: 2,
                solver_runs: 6,
                ..DiffCounters::default()
            },
            continuum_classes: BTreeMap::from([("r{0,1}xc{0}".to_string(), 3)]),
            failure: None,
            cfr_points: 2,
            cfr_exploitability_max: 5e-4,
            point_timing: HistSnapshot::empty(),
        };
        let doc = summary_json(&clean);
        assert!(doc.get("ok").unwrap().as_bool().unwrap());
        assert_eq!(doc.get("points").unwrap().as_usize().unwrap(), 2);
        assert_eq!(doc.get("cfr_points").unwrap().as_usize().unwrap(), 2);
        assert!(
            doc.get("cfr_exploitability_ok").unwrap().as_bool().unwrap(),
            "5e-4 is within the CFR gate"
        );
        assert_eq!(
            doc.get("continuum_classes")
                .unwrap()
                .get("r{0,1}xc{0}")
                .unwrap()
                .as_usize()
                .unwrap(),
            3
        );

        let failed = DiffOutcome {
            counters: DiffCounters::default(),
            continuum_classes: BTreeMap::new(),
            cfr_points: 1,
            cfr_exploitability_max: 2e-2,
            point_timing: HistSnapshot::empty(),
            failure: Some(Failure {
                class: FailureClass::OracleDisagreement,
                detail: "boom".into(),
                counterexample: counterexample(
                    &cnash_game::games::matching_pennies(),
                    &oracle_placeholder_solver(),
                    0,
                    "x".into(),
                ),
            }),
        };
        let doc = summary_json(&failed);
        assert!(!doc.get("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            doc.get("failure_class").unwrap().as_str().unwrap(),
            "oracle_disagreement"
        );
        assert!(
            !doc.get("cfr_exploitability_ok").unwrap().as_bool().unwrap(),
            "2e-2 violates the CFR gate"
        );
    }

    #[test]
    fn cfr_column_converges_within_the_gate_on_a_mixed_grid() {
        // Matching-pennies-style families have no pure equilibrium, so
        // the CFR column cannot claim and must still drive its average
        // profile under the exploitability gate; dominance-solvable
        // points are claimable outright.
        let points = vec![
            GameSpec::Builtin("matching_pennies".into()),
            dominance_point(3),
            GameSpec::Family {
                family: "covariant".into(),
                size: 3,
                rows: None,
                cols: None,
                scale: None,
                knob: None,
                seed: 1,
            },
        ];
        let opts = DiffOptions::new(true, 0, false).with_threads(0);
        let suite = solver_suite(&opts);
        assert!(
            suite.iter().any(|s| matches!(s, SolverSpec::Cfr { .. })),
            "the default suite carries the CFR column"
        );
        let outcome = run_grid(&points, &suite, &opts).unwrap();
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        assert_eq!(outcome.cfr_points, points.len());
        assert!(
            outcome.cfr_exploitability_max <= CFR_EXPLOITABILITY_TOL,
            "CFR exploitability {} above the {CFR_EXPLOITABILITY_TOL:e} gate",
            outcome.cfr_exploitability_max
        );
        let doc = summary_json(&outcome);
        assert!(doc.get("cfr_exploitability_ok").unwrap().as_bool().unwrap());
        // Without the CFR column nothing is tracked and the gate is
        // vacuously satisfied.
        let no_cfr: Vec<SolverSpec> = suite
            .into_iter()
            .filter(|s| !matches!(s, SolverSpec::Cfr { .. }))
            .collect();
        let outcome = run_grid(&points[..1], &no_cfr, &opts).unwrap();
        assert_eq!(outcome.cfr_points, 0);
        let doc = summary_json(&outcome);
        assert!(doc.get("cfr_exploitability_ok").unwrap().as_bool().unwrap());
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        // A small multi-point grid with unlisted (continuum) hits:
        // degenerate + sparse points plus a clean dominance target.
        let points: Vec<GameSpec> = ["degenerate", "sparse", "dominance_solvable"]
            .iter()
            .flat_map(|family| {
                (0..2).map(|seed| GameSpec::Family {
                    family: family.to_string(),
                    size: 3,
                    rows: None,
                    cols: None,
                    scale: None,
                    knob: None,
                    seed,
                })
            })
            .collect();
        let solvers = [ideal_solver(400)];
        let base = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 4,
            corrupt: false,
            threads: 1,
        };
        let serial = run_grid(&points, &solvers, &base).unwrap();
        // The exact-oracle column rides in the same summary: it ran on
        // every point, refuted nothing, and absorbed every continuum
        // hit (`unclassified` is the gate alias CI greps for).
        let serial_doc = summary_json(&serial);
        assert_eq!(
            serial_doc.get("exact_points").unwrap().as_usize().unwrap(),
            points.len()
        );
        assert_eq!(
            serial_doc
                .get("exact_disagreements")
                .unwrap()
                .as_usize()
                .unwrap(),
            0
        );
        assert_eq!(
            serial_doc.get("unclassified").unwrap().as_usize().unwrap(),
            serial.counters.unlisted_unclassified_hits
        );
        // Wall-clock timing keys can never be byte-stable; everything
        // else must be. Strip them exactly the way CI does.
        let stripped = |outcome: &DiffOutcome| {
            let mut doc = summary_json(outcome);
            strip_timing_keys(&mut doc);
            doc.pretty()
        };
        for threads in [2, 4, 8] {
            let opts = base.clone().with_threads(threads);
            let parallel = run_grid(&points, &solvers, &opts).unwrap();
            assert_eq!(parallel.counters, serial.counters, "threads={threads}");
            assert_eq!(
                parallel.continuum_classes, serial.continuum_classes,
                "threads={threads}"
            );
            assert_eq!(
                stripped(&parallel),
                stripped(&serial),
                "threads={threads}: stripped summary must be byte-identical"
            );
            // Timing itself is still *collected* at any thread count:
            // one sample per grid point, clean sweep.
            assert_eq!(
                parallel.point_timing.count,
                points.len() as u64,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn summary_timing_keys_are_flat_and_strippable() {
        let opts = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 1,
            corrupt: false,
            threads: 1,
        };
        let outcome = run_grid(&[dominance_point(2)], &[ideal_solver(200)], &opts).unwrap();
        assert_eq!(outcome.point_timing.count, 1);
        let mut doc = summary_json(&outcome);
        let timing_keys: Vec<&str> = match &doc {
            Json::Obj(map) => map
                .keys()
                .filter(|k| k.starts_with("timing_"))
                .map(String::as_str)
                .collect(),
            other => panic!("summary must be an object, got {other:?}"),
        };
        assert_eq!(
            timing_keys,
            [
                "timing_point_us_max",
                "timing_point_us_mean",
                "timing_point_us_p50",
                "timing_point_us_p90",
                "timing_point_us_p99",
                "timing_point_us_total",
                "timing_points_measured",
            ]
        );
        assert_eq!(
            doc.get("timing_points_measured").unwrap().as_u64().unwrap(),
            1
        );
        // Flat scalars: the pretty form keeps one `"timing_` line per
        // key, so CI can drop them all with `grep -v '"timing_'` —
        // the in-process strip helper must agree with that filter.
        let pretty = doc.pretty();
        assert_eq!(
            pretty.lines().filter(|l| l.contains("\"timing_")).count(),
            timing_keys.len()
        );
        strip_timing_keys(&mut doc);
        assert!(!doc.pretty().contains("timing_"));
        assert!(doc.get("ok").unwrap().as_bool().unwrap());
    }

    #[test]
    fn parallel_sweep_stops_at_the_same_first_failure() {
        // Corrupt sweep over several points: whatever the thread count,
        // the fold must stop at the first failing point in grid order
        // and report the identical minimized counterexample.
        let points: Vec<GameSpec> = (0..4).map(|seed| dominance_point_seeded(3, seed)).collect();
        let solvers = [ideal_solver(800)];
        let base = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 4,
            corrupt: true,
            threads: 1,
        };
        let serial = run_grid(&points, &solvers, &base).unwrap();
        let serial_failure = serial.failure.expect("corrupt sweep must fail");
        for threads in [3, 8] {
            let opts = base.clone().with_threads(threads);
            let parallel = run_grid(&points, &solvers, &opts).unwrap();
            let failure = parallel.failure.expect("corrupt sweep must fail");
            assert_eq!(parallel.counters, serial.counters, "threads={threads}");
            assert_eq!(failure.detail, serial_failure.detail);
            assert_eq!(
                failure.counterexample.to_json().pretty(),
                serial_failure.counterexample.to_json().pretty(),
                "threads={threads}: counterexample must be byte-identical"
            );
        }
    }

    #[test]
    fn continuum_hits_on_degenerate_families_are_classified() {
        // Degenerate and sparse families produce equilibrium continua;
        // every certificate-valid hit off the enumerated set must be
        // matched to a support-pair class — none left unclassified.
        let mut points = Vec::new();
        for family in ["degenerate", "sparse"] {
            for size in [2, 3] {
                for seed in 0..2 {
                    points.push(GameSpec::Family {
                        family: family.into(),
                        size,
                        rows: None,
                        cols: None,
                        scale: None,
                        knob: None,
                        seed,
                    });
                }
            }
        }
        let opts = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 4,
            corrupt: false,
            threads: 0,
        };
        let outcome = run_grid(&points, &solver_suite(&opts), &opts).unwrap();
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        let c = outcome.counters;
        assert!(
            c.unlisted_valid_hits > 0,
            "degenerate/sparse grid should produce continuum hits (got {c:?})"
        );
        assert_eq!(
            c.unlisted_classified_hits, c.unlisted_valid_hits,
            "every unlisted hit must be classified: {:?}",
            outcome.continuum_classes
        );
        assert_eq!(c.unlisted_unclassified_hits, 0);
        assert!(!outcome.continuum_classes.is_empty());
        assert!(
            outcome
                .continuum_classes
                .keys()
                .all(|k| !k.starts_with('?')),
            "{:?}",
            outcome.continuum_classes
        );
    }

    #[test]
    fn exact_classes_absorb_continua_at_sizes_that_used_to_unclassify() {
        // Sizes >= 4 of the degenerate family are where the float
        // enumerator's singular indifference systems used to leave
        // `?`-labelled unclassified hits. With the exact oracle's
        // vertex representatives merged into the continuum classes,
        // every unlisted hit must classify.
        let mut points = Vec::new();
        for size in [4, 5] {
            for seed in 0..3 {
                points.push(GameSpec::Family {
                    family: "degenerate".into(),
                    size,
                    rows: None,
                    cols: None,
                    scale: None,
                    knob: None,
                    seed,
                });
            }
        }
        let opts = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 4,
            corrupt: false,
            threads: 0,
        };
        let outcome = run_grid(&points, &solver_suite(&opts), &opts).unwrap();
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        let c = outcome.counters;
        assert_eq!(c.exact_points, points.len());
        assert_eq!(c.exact_disagreements, 0);
        assert_eq!(
            c.unlisted_unclassified_hits, 0,
            "exact representatives must absorb every continuum hit: {:?}",
            outcome.continuum_classes
        );
    }

    #[test]
    fn exact_cross_check_refutes_a_fabricated_truth() {
        // Cooperate/cooperate in the prisoner's dilemma is not an
        // equilibrium; selling it as float truth must be refuted by
        // exact substitution, witnessed by the float oracle.
        let g = cnash_game::games::prisoners_dilemma();
        let bogus = Equilibrium::from_profile(
            &g,
            MixedStrategy::pure(2, 0).unwrap(),
            MixedStrategy::pure(2, 0).unwrap(),
        );
        let err = exact_cross_check(&g, &[bogus]).expect_err("must refute");
        assert_eq!(err.1, "float");
        assert!(err.0.contains("exact regret"), "{}", err.0);
        // The genuine truth passes and returns the exact classes.
        let truth = enumerate_equilibria(&g, 1e-9);
        let classes = exact_cross_check(&g, &truth).unwrap();
        assert!(!classes.is_empty());
        assert_eq!(
            FailureClass::ExactOracleDisagreement.name(),
            "exact_oracle_disagreement"
        );
    }

    fn dominance_point_seeded(size: usize, seed: u64) -> GameSpec {
        GameSpec::Family {
            family: "dominance_solvable".into(),
            size,
            rows: None,
            cols: None,
            scale: None,
            knob: None,
            seed,
        }
    }

    /// The corrupt-ideal failure predicate the minimizer tests shrink
    /// against: a deterministic, always-reproducing mismatch.
    fn corrupt_predicate(seed: u64) -> impl Fn(&BimatrixGame) -> bool {
        move |g: &BimatrixGame| reproduces(g, &ideal_solver(400), seed, true)
    }

    #[test]
    fn minimizer_output_still_reproduces_the_mismatch_class() {
        // Property: across families and seeds, whenever the original
        // game reproduces a false-equilibrium mismatch, the shrunk game
        // must reproduce the *same* mismatch class (and never grow).
        use cnash_game::families::Family;
        let mut shrunk_any = false;
        for family in Family::ALL {
            for seed in 0..3u64 {
                let game = family
                    .build(3, family.default_scale(), family.default_knob(), seed)
                    .unwrap();
                let fails = corrupt_predicate(7);
                if !fails(&game) {
                    continue;
                }
                let min = minimize(&game, &fails);
                assert!(
                    fails(&min),
                    "{}: minimized game no longer reproduces",
                    game.name()
                );
                assert!(min.row_actions() <= game.row_actions());
                assert!(min.col_actions() <= game.col_actions());
                assert!(min.row_payoffs().max() <= game.row_payoffs().max());
                shrunk_any |= min.row_actions() + min.col_actions()
                    < game.row_actions() + game.col_actions()
                    || min.row_payoffs().max() < game.row_payoffs().max();
            }
        }
        assert!(shrunk_any, "no family instance was shrunk at all");
    }

    #[test]
    fn minimizer_is_deterministic_and_shrinks_payoff_values() {
        // Fixed-seed regression: shrinking the same input twice yields
        // the same game bitwise, and the value passes (scale halving +
        // cell zeroing) drive payoffs toward 0 beyond action deletion.
        let game = dominance_point_seeded(3, 3).build().unwrap();
        let fails = corrupt_predicate(7);
        assert!(fails(&game), "predicate must hold on the seed game");
        let a = minimize(&game, &fails);
        let b = minimize(&game, &fails);
        assert_eq!(a.row_payoffs(), b.row_payoffs(), "nondeterministic shrink");
        assert_eq!(a.col_payoffs(), b.col_payoffs(), "nondeterministic shrink");
        assert!(
            a.row_actions() + a.col_actions() < game.row_actions() + game.col_actions(),
            "action deletion must shrink the 3x3 seed game"
        );
        let max_payoff = |g: &BimatrixGame| g.row_payoffs().max().max(g.col_payoffs().max());
        assert!(
            max_payoff(&a) < max_payoff(&game),
            "value shrinking must reduce the payoff scale ({} -> {})",
            max_payoff(&game),
            max_payoff(&a)
        );
        // Exhaustive 1-minimality at the fixpoint: no further single
        // deletion, halving or zeroing still reproduces.
        assert!(try_action_deletion(&a, &&fails).is_none());
        assert!(try_scale_reduction(&a, &&fails).is_none());
        assert!(try_payoff_zeroing(&a, &&fails).is_none());
    }

    #[test]
    fn worst_response_has_positive_regret_on_nontrivial_games() {
        let g = cnash_game::games::battle_of_the_sexes();
        let q = MixedStrategy::pure(2, 0).unwrap();
        let lie = worst_response(&g, &q);
        let cert = Certificate::build(&g, lie, q, CLAIM_TOL).unwrap();
        assert!(!cert.is_valid());
    }
}
