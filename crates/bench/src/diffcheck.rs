//! Differential oracle fuzzing: structured game families vs exact
//! oracles vs hardware solvers.
//!
//! The repository has two exact Nash oracles that share no code
//! (`cnash_game::support_enum`, `cnash_game::lemke_howson`), an
//! independent verification layer (`cnash_core::certificate`), and two
//! hardware solver stacks (C-Nash crossbar, S-QUBO/D-Wave). This module
//! drives all of them against each other over a *family × size × seed*
//! grid of structured games (`cnash_game::families`) — GAMUT-style
//! differential testing:
//!
//! 1. **Oracle self-consistency** — per grid point, support enumeration
//!    must find at least one equilibrium (Nash's theorem), and every
//!    Lemke–Howson solution must certificate-verify *and* appear in the
//!    enumerated set.
//! 2. **Solver soundness** — every solver run that *claims* a hit
//!    (`RunOutcome::is_equilibrium`) is re-verified through an
//!    independently computed [`Certificate`]. A claim the certificate
//!    rejects is a **false equilibrium** — the one mismatch class that
//!    is always a bug. Runs that find nothing are **missed but
//!    allowed** (the solvers are stochastic); certificate-valid hits
//!    absent from the enumerated set are **unlisted-valid** (possible
//!    on degenerate games with equilibrium continua) and merely
//!    counted.
//!
//! On failure the harness **minimizes** the offending game by greedy
//! action deletion (re-running the failing solver seed after each
//! candidate deletion) and emits a single-job, explicit-payoff,
//! replayable jobs file — `--jobs-file` replays it, re-verifying the
//! claims with certificates.
//!
//! The `corrupt` flag is the harness's own test hook: it wraps every
//! solver so that claimed hits are swapped for a worst-response profile
//! *while keeping the claim flag set* — a deliberately lying solver the
//! pipeline must catch, minimize and report. CI runs it to prove the
//! failure path stays live.

use cnash_core::certificate::Certificate;
use cnash_core::NashSolver;
use cnash_game::canonical::Hasher64;
use cnash_game::lemke_howson::lemke_howson_all_labels;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::{BimatrixGame, Equilibrium, Matrix, MixedStrategy};
use cnash_runtime::spec::{BatchSpec, ConfigSpec, GameSpec, JobSpec, SolverSpec};
use cnash_runtime::{Json, PortfolioStop, SpecError};

/// Tolerance at which solvers claim hits (`RunOutcome::is_equilibrium`
/// uses exact regrets at `1e-6`); certificates re-check the same
/// criterion independently.
pub const CLAIM_TOL: f64 = 1e-6;
/// Tolerance for oracle cross-checks (Lemke–Howson's own filter).
pub const ORACLE_TOL: f64 = 1e-7;
/// Profile tolerance when matching a hit against the enumerated set.
pub const MATCH_TOL: f64 = 1e-4;

/// Options of one differential-fuzz sweep.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Reduced PR-time grid (nightly runs the full grid).
    pub quick: bool,
    /// Base seed, offsetting every family/run seed in the grid (the
    /// nightly job derives it from the date).
    pub base_seed: u64,
    /// Solver runs per (grid point, solver).
    pub runs: usize,
    /// Test hook: corrupt claimed hits to exercise the failure path.
    pub corrupt: bool,
}

impl DiffOptions {
    /// Standard options for a sweep.
    pub fn new(quick: bool, base_seed: u64, corrupt: bool) -> Self {
        Self {
            quick,
            base_seed,
            runs: if quick { 4 } else { 12 },
            corrupt,
        }
    }
}

/// The family × size × seed grid, plus a uniform-random baseline column
/// ([`GameSpec::Random`]) so the legacy generator is fuzzed too.
pub fn family_grid(opts: &DiffOptions) -> Vec<GameSpec> {
    use cnash_game::families::Family;
    let sizes: &[usize] = if opts.quick { &[2, 3] } else { &[2, 3, 4, 5] };
    let seeds = if opts.quick { 2u64 } else { 5 };
    let mut grid = Vec::new();
    for family in Family::ALL {
        for &size in sizes {
            for s in 0..seeds {
                grid.push(GameSpec::Family {
                    family: family.name().into(),
                    size,
                    scale: None,
                    knob: None,
                    seed: opts.base_seed.wrapping_add(s),
                });
            }
        }
    }
    for &size in sizes {
        for s in 0..seeds {
            grid.push(GameSpec::Random {
                rows: size,
                cols: size,
                max_payoff: 6,
                seed: opts.base_seed.wrapping_add(s),
            });
        }
    }
    grid
}

/// The solver suite swept per grid point: both C-Nash presets and the
/// S-QUBO baseline.
pub fn solver_suite(opts: &DiffOptions) -> Vec<SolverSpec> {
    let iterations = if opts.quick { 800 } else { 3000 };
    vec![
        SolverSpec::CNash {
            config: ConfigSpec::ideal(12).with_iterations(iterations),
            hardware_seed: 1,
        },
        SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(iterations),
            hardware_seed: 1,
        },
        SolverSpec::DWave {
            model: "2000q".into(),
            reads_per_run: 1,
        },
    ]
}

/// Counters of one sweep (all mismatch classes surfaced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffCounters {
    /// Grid points checked.
    pub points: usize,
    /// Ground-truth equilibria enumerated across the grid.
    pub oracle_equilibria: usize,
    /// Lemke–Howson solutions cross-checked against enumeration.
    pub lh_cross_checked: usize,
    /// Solver runs executed.
    pub solver_runs: usize,
    /// Runs claiming an equilibrium hit.
    pub claimed_hits: usize,
    /// Claimed hits that certificate-verified *and* matched an
    /// enumerated equilibrium.
    pub verified_hits: usize,
    /// Claimed hits that certificate-verified but matched no enumerated
    /// equilibrium (possible on degenerate games — counted, allowed).
    pub unlisted_valid_hits: usize,
    /// Runs that found nothing (missed but allowed — the solvers are
    /// stochastic).
    pub missed_runs: usize,
}

/// The mismatch classes that fail a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// A solver claimed a hit the certificate rejects.
    FalseEquilibrium,
    /// The exact oracles disagree with each other (or enumeration found
    /// no equilibrium at all).
    OracleDisagreement,
}

impl FailureClass {
    /// Stable wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::FalseEquilibrium => "false_equilibrium",
            FailureClass::OracleDisagreement => "oracle_disagreement",
        }
    }
}

/// A reproducible sweep failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Mismatch class.
    pub class: FailureClass,
    /// Human-readable description (game, solver, seed, regrets).
    pub detail: String,
    /// Minimized single-job jobs file reproducing the failure
    /// (explicit payoffs — self-contained).
    pub counterexample: BatchSpec,
}

/// Result of one sweep: counters plus the first failure, if any.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Aggregate counters.
    pub counters: DiffCounters,
    /// The first failure encountered (the sweep stops there).
    pub failure: Option<Failure>,
}

/// Machine-readable sweep summary (stdout of the `diffcheck` binary).
pub fn summary_json(outcome: &DiffOutcome) -> Json {
    let c = &outcome.counters;
    let n = |v: usize| Json::num(v as f64);
    let mut obj = vec![
        ("points".to_string(), n(c.points)),
        ("oracle_equilibria".to_string(), n(c.oracle_equilibria)),
        ("lh_cross_checked".to_string(), n(c.lh_cross_checked)),
        ("solver_runs".to_string(), n(c.solver_runs)),
        ("claimed_hits".to_string(), n(c.claimed_hits)),
        ("verified_hits".to_string(), n(c.verified_hits)),
        ("unlisted_valid_hits".to_string(), n(c.unlisted_valid_hits)),
        ("missed_runs".to_string(), n(c.missed_runs)),
        ("ok".to_string(), Json::Bool(outcome.failure.is_none())),
    ];
    if let Some(f) = &outcome.failure {
        obj.push(("failure_class".into(), Json::str(f.class.name())));
        obj.push(("failure_detail".into(), Json::str(f.detail.clone())));
    }
    Json::Obj(obj.into_iter().collect())
}

/// The worst-response corruption: all mass on the row action with the
/// *lowest* payoff against `q` — the most wrong pure claim available.
pub fn worst_response(game: &BimatrixGame, q: &MixedStrategy) -> MixedStrategy {
    let payoffs = game
        .row_payoff_vector(q)
        .expect("profile shapes match the game");
    let worst = payoffs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite payoffs"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    MixedStrategy::pure(game.row_actions(), worst).expect("non-empty action set")
}

/// A deliberately lying solver: claimed hits keep their claim flag but
/// have the row strategy swapped for the worst response — the test hook
/// proving the differential pipeline catches false equilibria.
pub struct CorruptingSolver {
    inner: Box<dyn NashSolver>,
}

impl CorruptingSolver {
    /// Wraps `inner`.
    pub fn new(inner: Box<dyn NashSolver>) -> Self {
        Self { inner }
    }
}

impl NashSolver for CorruptingSolver {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn game(&self) -> &BimatrixGame {
        self.inner.game()
    }

    fn run(&self, seed: u64) -> cnash_core::RunOutcome {
        let mut out = self.inner.run(seed);
        if out.is_equilibrium {
            if let Some((_, q)) = out.profile.take() {
                let lie = worst_response(self.inner.game(), &q);
                out.profile = Some((lie, q));
            }
        }
        out
    }
}

fn build_solver(
    spec: &SolverSpec,
    game: &BimatrixGame,
    corrupt: bool,
) -> Result<Box<dyn NashSolver>, SpecError> {
    let solver = spec.build(game)?;
    Ok(if corrupt {
        Box::new(CorruptingSolver::new(solver))
    } else {
        solver
    })
}

/// Deterministic per-(point, solver) run-seed base: mixing the game's
/// canonical fingerprint and the solver spec decorrelates the grid
/// while keeping every failing seed replayable from the jobs file.
fn run_seed_base(base_seed: u64, game: &BimatrixGame, solver: &SolverSpec) -> u64 {
    let mut h = Hasher64::new();
    h.write_str("diffcheck-runs")
        .write_u64(base_seed)
        .write_u64(game.canonical_fingerprint())
        .write_str(&format!("{solver:?}"));
    h.finish()
}

/// `Some(detail)` if the claimed profile fails independent certificate
/// verification — the false-equilibrium predicate.
fn claim_rejected(game: &BimatrixGame, p: &MixedStrategy, q: &MixedStrategy) -> Option<String> {
    match Certificate::build(game, p.clone(), q.clone(), CLAIM_TOL) {
        Err(e) => Some(format!("certificate construction failed: {e}")),
        Ok(cert) if !cert.is_valid() => Some(format!(
            "claimed equilibrium has regrets ({:.3e}, {:.3e}) above {CLAIM_TOL:.0e}",
            cert.regrets.0, cert.regrets.1
        )),
        Ok(_) => None,
    }
}

/// `true` if running `solver_spec` (optionally corrupted) at `seed` on
/// `game` still produces a certificate-rejected claim — the predicate
/// counterexample minimization shrinks against.
fn reproduces(game: &BimatrixGame, solver_spec: &SolverSpec, seed: u64, corrupt: bool) -> bool {
    let Ok(solver) = build_solver(solver_spec, game, corrupt) else {
        return false;
    };
    let out = solver.run(seed);
    match (out.is_equilibrium, &out.profile) {
        (true, Some((p, q))) => claim_rejected(game, p, q).is_some(),
        _ => false,
    }
}

fn drop_row(game: &BimatrixGame, i: usize) -> Option<BimatrixGame> {
    sub_game(game, |r, _| r != i, |_, _| true)
}

fn drop_col(game: &BimatrixGame, j: usize) -> Option<BimatrixGame> {
    sub_game(game, |_, _| true, |c, _| c != j)
}

fn sub_game(
    game: &BimatrixGame,
    keep_row: impl Fn(usize, usize) -> bool,
    keep_col: impl Fn(usize, usize) -> bool,
) -> Option<BimatrixGame> {
    let filter = |m: &Matrix| -> Vec<Vec<f64>> {
        (0..m.rows())
            .filter(|&r| keep_row(r, m.rows()))
            .map(|r| {
                m.row(r)
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| keep_col(*c, m.cols()))
                    .map(|(_, &v)| v)
                    .collect()
            })
            .collect()
    };
    let rows = filter(game.row_payoffs());
    if rows.is_empty() || rows[0].is_empty() {
        return None;
    }
    BimatrixGame::new(
        format!("{}~min", game.name().trim_end_matches("~min")),
        Matrix::from_rows(&rows).ok()?,
        Matrix::from_rows(&filter(game.col_payoffs())).ok()?,
    )
    .ok()
}

/// Greedy delta-debugging: keeps deleting single actions while the
/// failure predicate still reproduces.
fn minimize(game: &BimatrixGame, still_fails: impl Fn(&BimatrixGame) -> bool) -> BimatrixGame {
    let mut current = game.clone();
    loop {
        let mut next = None;
        for i in 0..current.row_actions() {
            if current.row_actions() > 1 {
                if let Some(cand) = drop_row(&current, i) {
                    if still_fails(&cand) {
                        next = Some(cand);
                        break;
                    }
                }
            }
        }
        if next.is_none() {
            for j in 0..current.col_actions() {
                if current.col_actions() > 1 {
                    if let Some(cand) = drop_col(&current, j) {
                        if still_fails(&cand) {
                            next = Some(cand);
                            break;
                        }
                    }
                }
            }
        }
        match next {
            Some(cand) => current = cand,
            None => return current,
        }
    }
}

/// Packages a minimized failure as a single-run, explicit-payoff,
/// replayable jobs file.
fn counterexample(game: &BimatrixGame, solver: &SolverSpec, seed: u64, label: String) -> BatchSpec {
    BatchSpec {
        jobs: vec![JobSpec {
            game: GameSpec::from_game(game),
            solver: solver.clone(),
            runs: 1,
            base_seed: seed,
            early_stop: None,
            label: Some(label),
        }],
        stop: PortfolioStop::Independent,
        threads: 1,
    }
}

/// Oracle spec used for oracle-disagreement counterexamples (replay
/// recomputes both oracles on the captured game; the solver entry is a
/// cheap placeholder so the jobs file stays loadable everywhere).
fn oracle_placeholder_solver() -> SolverSpec {
    SolverSpec::Ideal {
        config: ConfigSpec::ideal(12).with_iterations(1),
    }
}

fn check_oracles(
    game: &BimatrixGame,
    counters: &mut DiffCounters,
) -> Result<Vec<Equilibrium>, Failure> {
    let truth = enumerate_equilibria(game, 1e-9);
    if truth.is_empty() {
        return Err(Failure {
            class: FailureClass::OracleDisagreement,
            detail: format!(
                "{}: support enumeration found no equilibrium (Nash's theorem guarantees one)",
                game.name()
            ),
            counterexample: counterexample(
                game,
                &oracle_placeholder_solver(),
                0,
                format!("diffcheck oracle_disagreement: {}", game.name()),
            ),
        });
    }
    counters.oracle_equilibria += truth.len();
    for eq in lemke_howson_all_labels(game) {
        counters.lh_cross_checked += 1;
        let cert_ok = Certificate::build(game, eq.row.clone(), eq.col.clone(), ORACLE_TOL)
            .map(|c| c.is_valid())
            .unwrap_or(false);
        let enumerated = truth.iter().any(|t| t.same_profile(&eq, 1e-5));
        if !cert_ok || !enumerated {
            let game_min = minimize(game, |g| {
                let t = enumerate_equilibria(g, 1e-9);
                lemke_howson_all_labels(g).iter().any(|e| {
                    let ok = Certificate::build(g, e.row.clone(), e.col.clone(), ORACLE_TOL)
                        .map(|c| c.is_valid())
                        .unwrap_or(false);
                    !ok || !t.iter().any(|x| x.same_profile(e, 1e-5))
                })
            });
            return Err(Failure {
                class: FailureClass::OracleDisagreement,
                detail: format!(
                    "{}: Lemke–Howson solution {eq} {}",
                    game.name(),
                    if cert_ok {
                        "is missing from the enumerated equilibrium set"
                    } else {
                        "fails certificate verification"
                    }
                ),
                counterexample: counterexample(
                    &game_min,
                    &oracle_placeholder_solver(),
                    0,
                    format!("diffcheck oracle_disagreement: {}", game.name()),
                ),
            });
        }
    }
    Ok(truth)
}

#[allow(clippy::too_many_arguments)]
fn check_run(
    game: &BimatrixGame,
    truth: &[Equilibrium],
    solver_spec: &SolverSpec,
    solver: &dyn NashSolver,
    seed: u64,
    corrupt: bool,
    counters: &mut DiffCounters,
) -> Option<Failure> {
    counters.solver_runs += 1;
    let out = solver.run(seed);
    let (claimed, profile) = (out.is_equilibrium, out.profile);
    let Some((p, q)) = profile else {
        counters.missed_runs += 1;
        return None;
    };
    if !claimed {
        counters.missed_runs += 1;
        return None;
    }
    counters.claimed_hits += 1;
    if let Some(why) = claim_rejected(game, &p, &q) {
        let game_min = minimize(game, |g| reproduces(g, solver_spec, seed, corrupt));
        let label = format!(
            "diffcheck false_equilibrium: {} via {} seed {seed}",
            game.name(),
            solver_spec.label()
        );
        return Some(Failure {
            class: FailureClass::FalseEquilibrium,
            detail: format!(
                "{} via {} (run seed {seed}): {why}",
                game.name(),
                solver_spec.label()
            ),
            counterexample: counterexample(&game_min, solver_spec, seed, label),
        });
    }
    if truth
        .iter()
        .any(|t| t.row.linf_distance(&p) < MATCH_TOL && t.col.linf_distance(&q) < MATCH_TOL)
    {
        counters.verified_hits += 1;
    } else {
        counters.unlisted_valid_hits += 1;
    }
    None
}

/// Sweeps the grid: oracle self-consistency per point, then every
/// solver × run, certificate-checking each claimed hit. Stops at the
/// first failure (already minimized into a replayable jobs file).
///
/// # Errors
///
/// Returns [`SpecError`] if a grid spec itself cannot be built — a
/// configuration bug, not a differential finding.
pub fn run_grid(
    points: &[GameSpec],
    solvers: &[SolverSpec],
    opts: &DiffOptions,
) -> Result<DiffOutcome, SpecError> {
    let mut counters = DiffCounters::default();
    for spec in points {
        let game = spec.build()?;
        counters.points += 1;
        let truth = match check_oracles(&game, &mut counters) {
            Ok(truth) => truth,
            Err(failure) => {
                return Ok(DiffOutcome {
                    counters,
                    failure: Some(failure),
                })
            }
        };
        for solver_spec in solvers {
            let solver = build_solver(solver_spec, &game, opts.corrupt)?;
            let base = run_seed_base(opts.base_seed, &game, solver_spec);
            for k in 0..opts.runs {
                if let Some(failure) = check_run(
                    &game,
                    &truth,
                    solver_spec,
                    solver.as_ref(),
                    base.wrapping_add(k as u64),
                    opts.corrupt,
                    &mut counters,
                ) {
                    return Ok(DiffOutcome {
                        counters,
                        failure: Some(failure),
                    });
                }
            }
        }
    }
    Ok(DiffOutcome {
        counters,
        failure: None,
    })
}

/// Replays a (counterexample) jobs file: re-runs every job's seeds and
/// certificate-checks each claimed hit, plus the oracle cross-check on
/// every game small enough to enumerate. Used to reproduce nightly
/// artifacts locally.
///
/// # Errors
///
/// Returns [`SpecError`] if a job's game or solver cannot be built.
pub fn replay(spec: &BatchSpec, corrupt: bool) -> Result<DiffOutcome, SpecError> {
    let mut counters = DiffCounters::default();
    for job in &spec.jobs {
        let game = job.game.build()?;
        counters.points += 1;
        let truth = match check_oracles(&game, &mut counters) {
            Ok(truth) => truth,
            Err(failure) => {
                return Ok(DiffOutcome {
                    counters,
                    failure: Some(failure),
                })
            }
        };
        let solver = build_solver(&job.solver, &game, corrupt)?;
        for k in 0..job.runs {
            if let Some(failure) = check_run(
                &game,
                &truth,
                &job.solver,
                solver.as_ref(),
                job.base_seed.wrapping_add(k as u64),
                corrupt,
                &mut counters,
            ) {
                return Ok(DiffOutcome {
                    counters,
                    failure: Some(failure),
                });
            }
        }
    }
    Ok(DiffOutcome {
        counters,
        failure: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominance_point(size: usize) -> GameSpec {
        GameSpec::Family {
            family: "dominance_solvable".into(),
            size,
            scale: None,
            knob: None,
            seed: 3,
        }
    }

    fn ideal_solver(iterations: usize) -> SolverSpec {
        SolverSpec::CNash {
            config: ConfigSpec::ideal(12).with_iterations(iterations),
            hardware_seed: 1,
        }
    }

    #[test]
    fn honest_solvers_verify_on_a_known_target() {
        let opts = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 3,
            corrupt: false,
        };
        let outcome = run_grid(&[dominance_point(2)], &[ideal_solver(800)], &opts).unwrap();
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        let c = outcome.counters;
        assert_eq!(c.points, 1);
        assert_eq!(c.solver_runs, 3);
        assert_eq!(c.claimed_hits + c.missed_runs, 3);
        assert!(
            c.claimed_hits > 0,
            "dominance-solvable 2x2 must be hit within 3 runs"
        );
        // Dominance-solvable truth is a single pure profile: every
        // verified hit matched it, nothing can be unlisted.
        assert_eq!(c.verified_hits, c.claimed_hits);
        assert_eq!(c.unlisted_valid_hits, 0);
        assert_eq!(c.oracle_equilibria, 1);
    }

    #[test]
    fn corrupt_hook_is_caught_minimized_and_replayable() {
        let opts = DiffOptions {
            quick: true,
            base_seed: 0,
            runs: 6,
            corrupt: true,
        };
        let outcome = run_grid(&[dominance_point(3)], &[ideal_solver(1200)], &opts).unwrap();
        let failure = outcome.failure.expect("the lying solver must be caught");
        assert_eq!(failure.class, FailureClass::FalseEquilibrium);
        assert!(failure.detail.contains("regrets"), "{}", failure.detail);

        // The counterexample is a self-contained, minimized jobs file.
        let jobs = &failure.counterexample;
        assert_eq!(jobs.jobs.len(), 1);
        assert_eq!(jobs.jobs[0].runs, 1);
        let min_game = jobs.jobs[0].game.build().unwrap();
        assert!(
            min_game.row_actions() + min_game.col_actions() < 6,
            "minimization must shrink the 3x3 game, got {}x{}",
            min_game.row_actions(),
            min_game.col_actions()
        );

        // Round-trip through the serialized jobs file, then replay:
        // corrupt replay reproduces the failure, honest replay is clean.
        let text = jobs.to_json().pretty();
        let parsed = BatchSpec::from_json(&text).unwrap();
        let again = replay(&parsed, true).unwrap();
        let refailure = again.failure.expect("replay must reproduce");
        assert_eq!(refailure.class, FailureClass::FalseEquilibrium);
        let honest = replay(&parsed, false).unwrap();
        assert!(honest.failure.is_none(), "{:?}", honest.failure);
    }

    #[test]
    fn summary_json_reports_failure_class() {
        let clean = DiffOutcome {
            counters: DiffCounters {
                points: 2,
                solver_runs: 6,
                ..DiffCounters::default()
            },
            failure: None,
        };
        let doc = summary_json(&clean);
        assert!(doc.get("ok").unwrap().as_bool().unwrap());
        assert_eq!(doc.get("points").unwrap().as_usize().unwrap(), 2);

        let failed = DiffOutcome {
            counters: DiffCounters::default(),
            failure: Some(Failure {
                class: FailureClass::OracleDisagreement,
                detail: "boom".into(),
                counterexample: counterexample(
                    &cnash_game::games::matching_pennies(),
                    &oracle_placeholder_solver(),
                    0,
                    "x".into(),
                ),
            }),
        };
        let doc = summary_json(&failed);
        assert!(!doc.get("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            doc.get("failure_class").unwrap().as_str().unwrap(),
            "oracle_disagreement"
        );
    }

    #[test]
    fn worst_response_has_positive_regret_on_nontrivial_games() {
        let g = cnash_game::games::battle_of_the_sexes();
        let q = MixedStrategy::pure(2, 0).unwrap();
        let lie = worst_response(&g, &q);
        let cert = Certificate::build(&g, lie, q, CLAIM_TOL).unwrap();
        assert!(!cert.is_valid());
    }
}
