//! Ablation studies of the design choices called out in DESIGN.md:
//!
//! * **A1 — grid resolution:** interval count `I` controls which mixed
//!   equilibria are representable (the paper's `1/I` quantization).
//! * **A2 — hardware non-idealities:** ideal evaluation vs exact-max
//!   hardware vs full WTA hardware; ADC resolution; device variability;
//!   process corners.
//!
//! `cargo run -p cnash-bench --bin ablation --release [-- --runs N]`

use cnash_bench::Cli;
use cnash_core::report::render_table;
use cnash_core::{CNashConfig, CNashSolver, ExperimentRunner, IdealSolver};
use cnash_device::corners::ProcessCorner;
use cnash_game::games;
use cnash_game::support_enum::enumerate_equilibria;

fn main() {
    let cli = Cli::parse_for(&["--runs", "--seed", "--full", "--threads"]);
    let runs = cli.runs.min(300);
    let runner = ExperimentRunner::new(runs, cli.seed);

    // ---- A1: interval sweep on Battle of the Sexes + Bird Game ----
    let mut rows = Vec::new();
    for game in [games::battle_of_the_sexes(), games::bird_game()] {
        let truth = enumerate_equilibria(&game, 1e-9);
        for intervals in [4u32, 6, 12, 24] {
            let cfg = CNashConfig::paper(intervals).with_iterations(10_000);
            let solver = CNashSolver::new(&game, cfg, cli.seed).expect("maps");
            let r = runner.evaluate(&solver, &truth);
            rows.push(vec![
                game.name().to_string(),
                intervals.to_string(),
                format!("{:.1}", r.success_rate),
                format!("{}/{}", r.covered, r.target_count),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &format!("A1 — probability-grid resolution ({runs} runs)"),
            &["game", "intervals I", "success %", "coverage"],
            &rows,
        )
    );
    println!(
        "Mixed equilibria with 1/3 components need I divisible by 3: I = 4\n\
         cannot represent them, so coverage drops exactly there.\n"
    );

    // ---- A2: hardware non-idealities on the Bird Game ----
    let game = games::bird_game();
    let truth = enumerate_equilibria(&game, 1e-9);
    let mut rows = Vec::new();

    let mut push = |label: &str, r: cnash_core::GameReport| {
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", r.success_rate),
            format!("{}/{}", r.covered, r.target_count),
        ]);
    };

    let ideal = IdealSolver::new(&game, CNashConfig::ideal(12).with_iterations(15_000));
    push("software-exact objective", runner.evaluate(&ideal, &truth));

    let mut cfg = CNashConfig::paper(12).with_iterations(15_000);
    cfg.use_wta = false;
    let no_wta = CNashSolver::new(&game, cfg, cli.seed).expect("maps");
    push(
        "hardware, exact max (no WTA)",
        runner.evaluate(&no_wta, &truth),
    );

    let full = CNashSolver::new(
        &game,
        CNashConfig::paper(12).with_iterations(15_000),
        cli.seed,
    )
    .expect("maps");
    push("full hardware (paper)", runner.evaluate(&full, &truth));

    for bits in [4u32, 6, 12] {
        let mut cfg = CNashConfig::paper(12).with_iterations(15_000);
        cfg.crossbar.adc_bits = Some(bits);
        let s = CNashSolver::new(&game, cfg, cli.seed).expect("maps");
        push(&format!("ADC {bits} bits"), runner.evaluate(&s, &truth));
    }

    for scale in [2.0f64, 4.0] {
        let mut cfg = CNashConfig::paper(12).with_iterations(15_000);
        cfg.crossbar.variability = cfg.crossbar.variability.scaled(scale);
        let s = CNashSolver::new(&game, cfg, cli.seed).expect("maps");
        push(
            &format!("variability x{scale}"),
            runner.evaluate(&s, &truth),
        );
    }

    for corner in ProcessCorner::ALL {
        let cfg = CNashConfig::paper_at_corner(12, corner).with_iterations(15_000);
        let s = CNashSolver::new(&game, cfg, cli.seed).expect("maps");
        push(&format!("corner {corner}"), runner.evaluate(&s, &truth));
    }

    // Dominance-reduced solving on the 8-action game: same answers from
    // a 4x smaller crossbar.
    {
        use cnash_core::reduced::ReducedCNashSolver;
        let mpd = games::modified_prisoners_dilemma();
        let mpd_truth = enumerate_equilibria(&mpd, 1e-9);
        let direct = CNashSolver::new(
            &mpd,
            CNashConfig::paper(12).with_iterations(10_000),
            cli.seed,
        )
        .expect("maps");
        let reduced = ReducedCNashSolver::new(
            &mpd,
            CNashConfig::paper(12).with_iterations(10_000),
            cli.seed,
        )
        .expect("maps");
        let rd = runner.evaluate(&direct, &mpd_truth);
        let rr = runner.evaluate(&reduced, &mpd_truth);
        let (cells_r, cells_d) = reduced.cell_savings();
        rows.push(vec![
            format!("MPD direct ({cells_d} cells)"),
            format!("{:.1}", rd.success_rate),
            format!("{}/{}", rd.covered, rd.target_count),
        ]);
        rows.push(vec![
            format!("MPD dominance-reduced ({cells_r} cells)"),
            format!("{:.1}", rr.success_rate),
            format!("{}/{}", rr.covered, rr.target_count),
        ]);
    }

    print!(
        "{}",
        render_table(
            &format!("A2 — hardware non-idealities, Bird Game ({runs} runs)"),
            &["pipeline variant", "success %", "coverage"],
            &rows,
        )
    );
    println!(
        "\nReproduced claim (Sec. 4.1): the architecture is robust — the full\n\
         noisy pipeline tracks the exact-arithmetic ablation closely, and\n\
         only aggressive variability scaling or very coarse ADCs degrade it."
    );
}
