//! Scaling study (extension beyond the paper): C-Nash success on games of
//! growing size, with the S-QUBO variable blow-up for contrast.
//!
//! Random games generally have equilibria *off* the `1/I` probability
//! grid, so this study reports two success metrics:
//!
//! * **exact** — the returned profile is an exact NE (only possible when
//!   the equilibrium happens to be grid-representable),
//! * **ε-NE** — no player can gain more than ε = 0.1 by deviating; this
//!   is what the quantized architecture can honestly promise for
//!   arbitrary games, and it converges to exact as `I` grows.
//!
//! `cargo run -p cnash-bench --bin scaling --release [-- --runs N]`

use cnash_bench::Cli;
use cnash_core::report::render_table;
use cnash_core::{CNashConfig, CNashSolver, NashSolver};
use cnash_game::generators::random_coordination_game;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_qubo::squbo::{SQubo, SQuboWeights};

fn main() {
    let cli = Cli::parse_for(&["--runs", "--seed", "--full", "--threads"]);
    let runs = cli.runs.min(200);
    let eps = 0.1;

    let mut rows = Vec::new();
    for n in [2usize, 3, 4, 6, 8, 10] {
        let game = random_coordination_game(n, 6, 2, 1000 + n as u64).expect("valid");
        let ne_count = if n <= 8 {
            enumerate_equilibria(&game, 1e-9).len().to_string()
        } else {
            "-".to_string() // enumeration too slow past 8 actions
        };
        let cfg = CNashConfig::paper(12).with_iterations(4000 * n);
        let solver = CNashSolver::new(&game, cfg, cli.seed).expect("maps");

        let mut exact = 0usize;
        let mut approx = 0usize;
        for k in 0..runs {
            let out = solver.run(cli.seed.wrapping_add(k as u64));
            let (p, q) = out.into_pair().expect("C-Nash always returns a profile");
            if game.is_equilibrium(&p, &q, 1e-6) {
                exact += 1;
            }
            if game.is_equilibrium(&p, &q, eps) {
                approx += 1;
            }
        }

        let squbo_vars = SQubo::build(&game, &SQuboWeights::default())
            .map(|s| s.num_vars().to_string())
            .unwrap_or_else(|_| "-".into());
        let (rows_phys, cols_phys) = solver.hardware().array_m().physical_size();
        rows.push(vec![
            format!("{n}x{n}"),
            ne_count,
            format!("{:.1}", 100.0 * exact as f64 / runs as f64),
            format!("{:.1}", 100.0 * approx as f64 / runs as f64),
            format!("{rows_phys}x{cols_phys}"),
            squbo_vars,
        ]);
    }
    print!(
        "{}",
        render_table(
            &format!("Scaling on random coordination games ({runs} runs each, eps = {eps})"),
            &[
                "game",
                "#NE",
                "exact %",
                "eps-NE %",
                "crossbar cells",
                "S-QUBO vars",
            ],
            &rows,
        )
    );
    println!(
        "\nRandom games rarely have grid-representable equilibria, so the\n\
         honest guarantee of a 1/I-quantized architecture is an eps-NE; the\n\
         exact-success column shows where equilibria happen to sit on the\n\
         grid. The MAX-QUBO formulation needs zero extra variables at any\n\
         size, while the S-QUBO slack encoding grows as O(n log maxM) on\n\
         top of the action bits — the structural reason the baselines'\n\
         success collapses with size (Table 1)."
    );
}
