//! SA hot-path performance harness: full re-evaluation vs the
//! incremental delta-energy subsystem.
//!
//! `cargo run --release -p cnash-bench --bin perf -- [--quick] [--out PATH]`
//!
//! Times the two production hot paths across a grid of game sizes and
//! payoff/coupling densities:
//!
//! * **bi-crossbar**: `CNashSolver::evaluate` per proposal (full two-phase
//!   read, `O(n·m)`) vs `CNashSolver::delta_evaluator` +
//!   `simulated_annealing_delta` (`O((n+m)·log nm)`),
//! * **QUBO**: `anneal` (`O(n)` row scan per proposal) vs
//!   `anneal_incremental` (cached local fields, `O(1)` per proposal).
//!
//! Emits `BENCH_sa_hotpath.json` (schema documented in the README,
//! written with `cnash-runtime`'s JSON writer so it parses with the same
//! tooling as the runtime's report JSON). Exit status doubles as the CI
//! regression gate:
//!
//! * exit 2 — equivalence check failed (the delta path diverged from
//!   full evaluation, a correctness bug),
//! * exit 1 — delta speedup at the 64×64 crossbar point fell below 1.0×
//!   (the incremental subsystem regressed into a slowdown),
//! * exit 0 — measurements recorded.

use cnash_anneal::delta::{simulated_annealing_delta, DeltaEnergy};
use cnash_anneal::engine::{simulated_annealing, SaOptions};
use cnash_anneal::moves::GridStrategyPair;
use cnash_bench::Cli;
use cnash_core::report::render_table;
use cnash_core::{CNashConfig, CNashSolver};
use cnash_game::generators::random_integer_game;
use cnash_qubo::annealer::{anneal, anneal_incremental, AnnealParams};
use cnash_qubo::Qubo;
use cnash_runtime::Json;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// One measured grid point.
struct Entry {
    kind: &'static str,
    label: String,
    size: usize,
    density: f64,
    iterations: usize,
    full_ns_per_iter: f64,
    delta_ns_per_iter: f64,
    equivalent: bool,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.full_ns_per_iter / self.delta_ns_per_iter
    }

    fn json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(self.kind)),
            ("label", Json::str(self.label.clone())),
            ("size", Json::num(self.size as f64)),
            ("density", Json::Num(self.density)),
            ("iterations", Json::num(self.iterations as f64)),
            ("full_ns_per_iter", Json::Num(self.full_ns_per_iter)),
            ("delta_ns_per_iter", Json::Num(self.delta_ns_per_iter)),
            ("speedup", Json::Num(self.speedup())),
            ("equivalent", Json::Bool(self.equivalent)),
        ])
    }
}

/// Times the crossbar pipeline at one `n × n` game size.
fn bench_crossbar(n: usize, max_payoff: u32, iterations: usize, seed: u64) -> Entry {
    let game = random_integer_game(n, n, max_payoff, seed).expect("valid grid point");
    let solver = CNashSolver::new(
        &game,
        CNashConfig::paper(12).with_iterations(iterations),
        seed,
    )
    .expect("integer game maps onto hardware");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBE7C);
    let init = GridStrategyPair::random(n, n, 12, &mut rng).expect("non-empty");
    let opts = SaOptions {
        iterations,
        schedule: solver.config().schedule,
        seed,
        target_energy: None,
        record_trace: false,
        record_hits: false,
    };

    // Full path: two-phase re-evaluation per proposal.
    let start = Instant::now();
    let full = simulated_annealing(
        init.clone(),
        |s| solver.evaluate(s),
        |s, r| s.neighbour(r),
        &opts,
    );
    let full_ns = start.elapsed().as_nanos() as f64 / iterations as f64;

    // Delta path: incremental evaluator, same seed and proposal stream.
    let mut evaluator = solver.delta_evaluator(init).expect("geometry matches");
    let start = Instant::now();
    let delta = simulated_annealing_delta(&mut evaluator, &opts);
    let delta_ns = start.elapsed().as_nanos() as f64 / iterations as f64;

    // Equivalence, two layers. (1) The incrementally maintained energy
    // must equal a from-scratch rebuild at the final state bit for bit —
    // the delta subsystem's core invariant. (2) Pointwise pipeline
    // agreement: the legacy full pipeline evaluated at the delta walk's
    // best state must agree with the delta energy there up to FP
    // reassociation and ADC rounding-tie noise (the walks themselves
    // legitimately diverge, deltas being differently-rounded reals).
    let scratch = solver
        .delta_evaluator(delta.final_state.clone())
        .expect("geometry matches")
        .energy();
    let pointwise = (solver.evaluate(&delta.best_state) - delta.best_energy).abs();
    let equivalent = scratch == delta.final_energy && pointwise < 0.05;
    let _ = full.best_state;

    Entry {
        kind: "bicrossbar",
        label: format!("bicrossbar-{n}x{n}-payoff{max_payoff}"),
        size: n,
        density: f64::from(max_payoff),
        iterations,
        full_ns_per_iter: full_ns,
        delta_ns_per_iter: delta_ns,
        equivalent,
    }
}

/// Times the QUBO annealer at one variable count / coupling density.
fn bench_qubo(vars: usize, density: f64, sweeps: usize, seed: u64) -> Entry {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qubo = Qubo::new(vars);
    for i in 0..vars {
        qubo.add_linear(i, rng.random_range(-5..=5i64) as f64);
        for j in i + 1..vars {
            if rng.random::<f64>() < density {
                qubo.add_coupling(i, j, rng.random_range(-3..=3i64) as f64);
            }
        }
    }
    let params = AnnealParams::new(sweeps, 10.0, 0.05);
    let proposals = sweeps * vars;

    let start = Instant::now();
    let full = anneal(&qubo, &params, seed);
    let full_ns = start.elapsed().as_nanos() as f64 / proposals as f64;

    let start = Instant::now();
    let inc = anneal_incremental(&qubo, &params, seed);
    let delta_ns = start.elapsed().as_nanos() as f64 / proposals as f64;

    // Integer couplings are exact in f64: the two paths must agree
    // bitwise, not approximately.
    let equivalent = full == inc;

    Entry {
        kind: "qubo",
        label: format!("qubo-{vars}v-density{density}"),
        size: vars,
        density,
        iterations: proposals,
        full_ns_per_iter: full_ns,
        delta_ns_per_iter: delta_ns,
        equivalent,
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, count) = values.fold((0.0, 0usize), |(s, c), v| (s + v.ln(), c + 1));
    if count == 0 {
        f64::NAN
    } else {
        (sum / count as f64).exp()
    }
}

/// `(actions per side, max payoff, SA iterations)` crossbar grid points.
type CrossbarGrid = Vec<(usize, u32, usize)>;
/// `(variables, coupling density, sweeps)` QUBO grid points.
type QuboGrid = Vec<(usize, f64, usize)>;

fn main() {
    let cli = Cli::parse_for(&["--quick", "--seed", "--out"]);
    let seed = cli.seed;

    // The 64×64 crossbar point is the acceptance gate and belongs to
    // every grid, quick or full.
    let (crossbar_grid, qubo_grid): (CrossbarGrid, QuboGrid) = if cli.quick {
        (
            vec![(8, 3, 2000), (64, 3, 400)],
            vec![(64, 1.0, 200), (128, 1.0, 100)],
        )
    } else {
        (
            vec![
                (8, 3, 4000),
                (16, 3, 3000),
                (32, 3, 1500),
                (64, 3, 800),
                (32, 8, 1500),
                (64, 8, 800),
            ],
            vec![
                (32, 0.25, 600),
                (32, 1.0, 600),
                (64, 1.0, 300),
                (128, 0.25, 150),
                (128, 1.0, 150),
            ],
        )
    };

    let mut entries = Vec::new();
    for &(n, payoff, iters) in &crossbar_grid {
        eprintln!("measuring bicrossbar {n}x{n} (payoff scale {payoff}, {iters} iters)...");
        entries.push(bench_crossbar(n, payoff, iters, seed));
    }
    for &(vars, density, sweeps) in &qubo_grid {
        eprintln!("measuring qubo {vars} vars (density {density}, {sweeps} sweeps)...");
        entries.push(bench_qubo(vars, density, sweeps, seed));
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.label.clone(),
                format!("{:.0}", e.full_ns_per_iter),
                format!("{:.0}", e.delta_ns_per_iter),
                format!("{:.2}x", e.speedup()),
                if e.equivalent { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "SA hot path: full re-evaluation vs incremental delta energy",
            &[
                "case",
                "full ns/iter",
                "delta ns/iter",
                "speedup",
                "equivalent"
            ],
            &rows,
        )
    );

    let gate = entries
        .iter()
        .find(|e| e.kind == "bicrossbar" && e.size == 64)
        .map(Entry::speedup);
    let summary = Json::obj([
        (
            "speedup_min",
            Json::Num(
                entries
                    .iter()
                    .map(Entry::speedup)
                    .fold(f64::INFINITY, f64::min),
            ),
        ),
        (
            "speedup_geomean",
            Json::Num(geomean(entries.iter().map(Entry::speedup))),
        ),
        ("speedup_64x64", gate.map(Json::Num).unwrap_or(Json::Null)),
    ]);
    let doc = Json::obj([
        ("bench", Json::str("sa_hotpath")),
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(if cli.quick { "quick" } else { "full" })),
        ("seed", Json::num(seed as f64)),
        (
            "entries",
            Json::Arr(entries.iter().map(Entry::json).collect()),
        ),
        ("summary", summary),
    ]);

    let out_path = cli.out.as_deref().unwrap_or("BENCH_sa_hotpath.json");
    if let Err(e) = std::fs::write(out_path, doc.pretty()) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out_path}");

    if entries.iter().any(|e| !e.equivalent) {
        eprintln!("FAIL: delta path diverged from full evaluation");
        std::process::exit(2);
    }
    match gate {
        Some(s) if s < 1.0 => {
            eprintln!("FAIL: 64x64 delta speedup {s:.2}x < 1.0x — hot-path regression");
            std::process::exit(1);
        }
        Some(s) => println!("64x64 hot-path speedup: {s:.2}x (gate: >= 1.0x)"),
        None => println!("note: no 64x64 crossbar point in this grid"),
    }
}
