//! CLI client for the solver service.
//!
//! `cargo run --release -p cnash-bench --bin service_client -- \
//!      --addr HOST:PORT --requests PATH [--golden] [--serial]`
//!
//! Streams a JSON-lines request file (one protocol request per line,
//! see `cnash_service::protocol`; blank lines and `#` comments are
//! skipped) to the daemon and prints one response line per request on
//! stdout:
//!
//! * `--serial` awaits each response before sending the next request,
//!   which pins the service's execution order to the request order —
//!   required for byte-deterministic `cache_hit`/`stats` fields;
//!   without it requests are pipelined across the daemon's shards.
//! * `--golden` normalises responses for golden-file diffing: the
//!   wall-clock fields are stripped and the document re-serialised
//!   canonically. CI's `service-smoke` job runs with both flags and
//!   diffs stdout against `tests/golden/service_reports.golden`.
//! * `--stats-json PATH` fetches the daemon's `stats` over a fresh
//!   connection *after* the replay and writes the pretty-printed
//!   response to `PATH` — the daemon must still be up, so the request
//!   file must not end in a `shutdown`.
//!
//! Exits 0 when every request got a response (error *responses* are
//! legitimate protocol output), 1 when the connection dropped
//! mid-stream or a response line was not valid protocol JSON — partial
//! output is never silently truncated — and 2 on usage errors.

use cnash_bench::client::{normalise_response, validate_response, ServiceConn};
use cnash_bench::Cli;
use cnash_runtime::Json;

fn main() {
    let cli = Cli::parse_for(&[
        "--addr",
        "--requests",
        "--golden",
        "--serial",
        "--stats-json",
    ]);
    let (Some(addr), Some(requests)) = (&cli.addr, &cli.requests) else {
        eprintln!("error: service_client needs --addr HOST:PORT and --requests PATH");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(requests) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {requests}: {e}");
            std::process::exit(2);
        }
    };
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();

    let mut conn = match ServiceConn::connect(addr.as_str()) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    // Every daemon response must be a single JSON object: an
    // unparseable line means the stream is corrupt (or the peer is not
    // the solver service), and continuing would silently produce bogus
    // output downstream.
    let emit = |line: &str, index: usize| {
        if let Err(e) = validate_response(line) {
            eprintln!(
                "error: response {} is not valid protocol JSON: {e}",
                index + 1
            );
            eprintln!("error: offending line: {line}");
            std::process::exit(1);
        }
        if cli.golden {
            println!("{}", normalise_response(line));
        } else {
            println!("{line}");
        }
    };

    let mut received = 0usize;
    if cli.serial {
        for line in &lines {
            match conn.round_trip(line) {
                Ok(response) => {
                    emit(&response, received);
                    received += 1;
                }
                Err(e) => {
                    eprintln!(
                        "error: connection lost after {received}/{} responses \
                         (request {} got no response): {e}",
                        lines.len(),
                        received + 1
                    );
                    std::process::exit(1);
                }
            }
        }
    } else {
        let mut sent = 0usize;
        for line in &lines {
            if let Err(e) = conn.send_line(line) {
                eprintln!(
                    "error: send failed: {sent}/{} requests sent, \
                     {received}/{0} responses received: {e}",
                    lines.len()
                );
                std::process::exit(1);
            }
            sent += 1;
        }
        conn.finish_writes();
        loop {
            match conn.recv_line() {
                Ok(Some(response)) => {
                    emit(&response, received);
                    received += 1;
                }
                Ok(None) => break, // clean EOF: the daemon drained the stream
                Err(e) => {
                    eprintln!(
                        "error: connection dropped mid-stream: {sent}/{} requests sent, \
                         {received}/{0} responses received: {e}",
                        lines.len()
                    );
                    std::process::exit(1);
                }
            }
        }
    }

    if received < lines.len() {
        eprintln!(
            "error: sent {} requests but received only {received} responses \
             (daemon closed the connection early)",
            lines.len()
        );
        std::process::exit(1);
    }

    if let Some(path) = &cli.stats_json {
        let mut conn = ServiceConn::connect(addr.as_str()).unwrap_or_else(|e| {
            eprintln!(
                "error: cannot reconnect for --stats-json (did the replay shut the daemon \
                 down?): {e}"
            );
            std::process::exit(1);
        });
        let response = conn
            .round_trip(r#"{"op":"stats","id":"stats-json"}"#)
            .unwrap_or_else(|e| {
                eprintln!("error: stats request failed: {e}");
                std::process::exit(1);
            });
        let doc = Json::parse(&response).unwrap_or_else(|e| {
            eprintln!("error: stats response is not valid JSON: {e}");
            std::process::exit(1);
        });
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
