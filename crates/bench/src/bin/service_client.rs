//! CLI client for the solver service.
//!
//! `cargo run --release -p cnash-bench --bin service_client -- \
//!      --addr HOST:PORT --requests PATH [--golden] [--serial]`
//!
//! Streams a JSON-lines request file (one protocol request per line,
//! see `cnash_service::protocol`; blank lines and `#` comments are
//! skipped) to the daemon and prints one response line per request on
//! stdout:
//!
//! * `--serial` awaits each response before sending the next request,
//!   which pins the service's execution order to the request order —
//!   required for byte-deterministic `cache_hit`/`stats` fields;
//!   without it requests are pipelined across the daemon's shards.
//! * `--golden` normalises responses for golden-file diffing: the
//!   wall-clock fields are stripped and the document re-serialised
//!   canonically. CI's `service-smoke` job runs with both flags and
//!   diffs stdout against `tests/golden/service_reports.golden`.
//!
//! Exits 0 when every request got a response (error *responses* are
//! legitimate protocol output), 1 when the connection died early, 2 on
//! usage errors.

use cnash_bench::client::{normalise_response, ServiceConn};
use cnash_bench::Cli;

fn main() {
    let cli = Cli::parse_for(&["--addr", "--requests", "--golden", "--serial"]);
    let (Some(addr), Some(requests)) = (&cli.addr, &cli.requests) else {
        eprintln!("error: service_client needs --addr HOST:PORT and --requests PATH");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(requests) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {requests}: {e}");
            std::process::exit(2);
        }
    };
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();

    let mut conn = match ServiceConn::connect(addr.as_str()) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let emit = |line: &str| {
        if cli.golden {
            println!("{}", normalise_response(line));
        } else {
            println!("{line}");
        }
    };

    let mut received = 0usize;
    if cli.serial {
        for line in &lines {
            match conn.round_trip(line) {
                Ok(response) => {
                    emit(&response);
                    received += 1;
                }
                Err(e) => {
                    eprintln!("error: request {} got no response: {e}", received + 1);
                    std::process::exit(1);
                }
            }
        }
    } else {
        for line in &lines {
            if let Err(e) = conn.send_line(line) {
                eprintln!("error: send failed: {e}");
                std::process::exit(1);
            }
        }
        conn.finish_writes();
        while let Ok(Some(response)) = conn.recv_line() {
            emit(&response);
            received += 1;
        }
    }

    if received < lines.len() {
        eprintln!(
            "error: sent {} requests but received {} responses",
            lines.len(),
            received
        );
        std::process::exit(1);
    }
}
