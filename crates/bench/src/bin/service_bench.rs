//! Service instance-cache performance harness: cold (program + solve)
//! vs cache-hit (solve only) request latency.
//!
//! `cargo run --release -p cnash-bench --bin service_bench -- \
//!      [--quick] [--seed S] [--out PATH]`
//!
//! Boots an in-process solver daemon, then measures end-to-end solve
//! requests over TCP at several game sizes: one **cold** request that
//! must program the bi-crossbar (the `O(n·m·I²·t)` device-sampling
//! mapping pass), followed by repeated **identical** requests that hit
//! the instance cache and skip programming entirely. Latencies are the
//! server-reported `wall_ms` (program + batch execution, excluding
//! network and JSON framing).
//!
//! Emits `BENCH_service.json` (same JSON tooling as the other
//! `BENCH_*` artefacts). Exit status doubles as the CI gate:
//!
//! * exit 2 — protocol error, or a repeat request missed the cache
//!   (a correctness bug in the canonical-hash keying),
//! * exit 1 — cache-hit solves at the 64×64 gate size are not at least
//!   1.5× faster than the cold solve (the cache stopped paying for
//!   itself),
//! * exit 0 — measurements recorded.

use cnash_bench::client::ServiceConn;
use cnash_bench::Cli;
use cnash_core::report::render_table;
use cnash_runtime::spec::{ConfigSpec, GameSpec, JobSpec, SolverSpec};
use cnash_runtime::Json;
use cnash_service::{serve, ServiceConfig};

/// The gate size: cache-hit speedup at 64×64 must stay ≥ this factor.
const GATE_SIZE: usize = 64;
const GATE_SPEEDUP: f64 = 1.5;
/// Cache-hit repeats per grid point (the minimum is reported).
const HIT_REPEATS: usize = 5;

struct Entry {
    label: String,
    size: usize,
    iterations: usize,
    cold_ms: f64,
    hit_ms_min: f64,
    hit_ms_mean: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.hit_ms_min
    }

    fn json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("size", Json::num(self.size as f64)),
            ("iterations", Json::num(self.iterations as f64)),
            ("cold_ms", Json::Num(self.cold_ms)),
            ("hit_ms_min", Json::Num(self.hit_ms_min)),
            ("hit_ms_mean", Json::Num(self.hit_ms_mean)),
            ("speedup", Json::Num(self.speedup())),
        ])
    }
}

fn solve_request(id: usize, size: usize, iterations: usize, seed: u64) -> String {
    let job = JobSpec {
        game: GameSpec::Random {
            rows: size,
            cols: size,
            max_payoff: 3,
            seed,
        },
        solver: SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(iterations),
            hardware_seed: 0,
        },
        runs: 1,
        base_seed: seed,
        early_stop: None,
        label: Some(format!("service-{size}x{size}")),
    };
    Json::obj([
        ("op", Json::str("solve")),
        ("id", Json::num(id as f64)),
        ("job", job.to_json()),
        // Support enumeration is intractable at these sizes; coverage
        // statistics are not what this harness measures.
        ("ground_truth", Json::str("skip")),
    ])
    .compact()
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(2);
}

/// One solve round trip; returns `(cache_hit, wall_ms)`.
fn timed_solve(conn: &mut ServiceConn, request: &str) -> (bool, f64) {
    let response = conn
        .round_trip(request)
        .unwrap_or_else(|e| fail(&format!("service connection died: {e}")));
    let doc =
        Json::parse(&response).unwrap_or_else(|e| fail(&format!("unparseable response: {e}")));
    if !doc.get("ok").and_then(Json::as_bool).unwrap_or(false) {
        fail(&format!("solve rejected: {response}"));
    }
    let hit = doc
        .get("cache_hit")
        .and_then(Json::as_bool)
        .unwrap_or_else(|e| fail(&format!("response lacks cache_hit: {e}")));
    let wall = doc
        .get("wall_ms")
        .and_then(Json::as_f64)
        .unwrap_or_else(|e| fail(&format!("response lacks wall_ms: {e}")));
    (hit, wall)
}

fn main() {
    let cli = Cli::parse_for(&["--quick", "--seed", "--out"]);
    let seed = cli.seed;

    // `(size, iterations)` grid; the 64×64 gate point belongs to every
    // grid, quick or full.
    let grid: Vec<(usize, usize)> = if cli.quick {
        vec![(16, 600), (64, 250)]
    } else {
        vec![(16, 1200), (32, 600), (64, 300)]
    };

    let handle = serve(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    })
    .unwrap_or_else(|e| fail(&format!("cannot start in-process daemon: {e}")));
    let mut conn = ServiceConn::connect(handle.addr())
        .unwrap_or_else(|e| fail(&format!("cannot connect: {e}")));

    let mut entries = Vec::new();
    let mut next_id = 0usize;
    for &(size, iterations) in &grid {
        eprintln!("measuring {size}x{size} ({iterations} iters, {HIT_REPEATS} hit repeats)...");
        next_id += 1;
        let request = solve_request(next_id, size, iterations, seed.wrapping_add(size as u64));
        let (hit, cold_ms) = timed_solve(&mut conn, &request);
        if hit {
            fail(&format!(
                "first {size}x{size} request already hit the cache"
            ));
        }
        let mut hits = Vec::new();
        for _ in 0..HIT_REPEATS {
            // Identical job spec → same canonical key → must hit.
            let (hit, wall) = timed_solve(&mut conn, &request);
            if !hit {
                fail(&format!("repeat {size}x{size} request missed the cache"));
            }
            hits.push(wall);
        }
        let hit_ms_min = hits.iter().copied().fold(f64::INFINITY, f64::min);
        let hit_ms_mean = hits.iter().sum::<f64>() / hits.len() as f64;
        entries.push(Entry {
            label: format!("service-{size}x{size}"),
            size,
            iterations,
            cold_ms,
            hit_ms_min,
            hit_ms_mean,
        });
    }
    let _ = conn.round_trip(r#"{"op":"shutdown"}"#);
    handle.join();

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.label.clone(),
                format!("{:.2}", e.cold_ms),
                format!("{:.2}", e.hit_ms_min),
                format!("{:.2}", e.hit_ms_mean),
                format!("{:.2}x", e.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Service latency: cold (program + solve) vs instance-cache hit",
            &[
                "case",
                "cold ms",
                "hit ms (min)",
                "hit ms (mean)",
                "speedup"
            ],
            &rows,
        )
    );

    let gate = entries
        .iter()
        .find(|e| e.size == GATE_SIZE)
        .map(Entry::speedup);
    let doc = Json::obj([
        ("bench", Json::str("service")),
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(if cli.quick { "quick" } else { "full" })),
        ("seed", Json::num(seed as f64)),
        (
            "entries",
            Json::Arr(entries.iter().map(Entry::json).collect()),
        ),
        (
            "summary",
            Json::obj([
                (
                    "speedup_min",
                    Json::Num(
                        entries
                            .iter()
                            .map(Entry::speedup)
                            .fold(f64::INFINITY, f64::min),
                    ),
                ),
                ("speedup_64x64", gate.map(Json::Num).unwrap_or(Json::Null)),
                ("gate_speedup", Json::Num(GATE_SPEEDUP)),
            ]),
        ),
    ]);
    let out_path = cli.out.as_deref().unwrap_or("BENCH_service.json");
    if let Err(e) = std::fs::write(out_path, doc.pretty()) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("wrote {out_path}");

    match gate {
        Some(s) if s < GATE_SPEEDUP => {
            eprintln!(
                "FAIL: {GATE_SIZE}x{GATE_SIZE} cache-hit speedup {s:.2}x < {GATE_SPEEDUP}x — \
                 the instance cache no longer pays for itself"
            );
            std::process::exit(1);
        }
        Some(s) => println!(
            "{GATE_SIZE}x{GATE_SIZE} cache-hit speedup: {s:.2}x (gate: >= {GATE_SPEEDUP}x)"
        ),
        None => println!("note: no {GATE_SIZE}x{GATE_SIZE} point in this grid"),
    }
}
