//! Batch/portfolio front-end: runs a JSON jobs file on the parallel
//! runtime and emits a machine-readable JSON report on stdout.
//!
//! `cargo run -p cnash-bench --bin batch --release -- \
//!      --jobs-file jobs.json [--threads T]`
//!
//! The jobs-file format is documented in `cnash_runtime::spec`; in
//! `"portfolio"` mode the first job to reach its early-stop target
//! cancels the rest.

use cnash_bench::Cli;
use cnash_runtime::report::portfolio_json;
use cnash_runtime::{BatchSpec, PortfolioRunner};

fn main() {
    // Restricted flag subset: everything else in the shared table
    // (--runs, --full, ...) has no meaning here — run budgets live in
    // the jobs file — and is rejected with a usage message instead of
    // being silently ignored.
    let cli = Cli::parse_for(&["--jobs-file", "--threads"]);
    let Some(path) = &cli.jobs_file else {
        eprintln!("error: the batch binary needs --jobs-file PATH");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let spec = match BatchSpec::from_json(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };

    let jobs: Vec<_> = match spec.jobs.iter().map(|j| j.prepare()).collect() {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };

    // --threads on the command line overrides the file's setting.
    let threads = if cli.threads > 0 {
        cli.threads
    } else {
        spec.threads
    };
    let outcome = PortfolioRunner::new()
        .threads(threads)
        .stop(spec.stop)
        .run(&jobs);

    for result in &outcome.results {
        eprintln!(
            "{:<40} runs {:>5}/{:<5} success {:>6.2}% coverage {}/{}{}",
            result.label,
            result.batch.executed_runs,
            result.batch.scheduled_runs,
            result.batch.report.success_rate,
            result.batch.report.covered,
            result.batch.report.target_count,
            if result.batch.stopped_early {
                "  [early stop]"
            } else if result.batch.cancelled {
                "  [cancelled]"
            } else {
                ""
            }
        );
    }
    if let Some(winner) = outcome.winner {
        eprintln!("winner: {}", outcome.results[winner].label);
    }
    print!("{}", portfolio_json(&outcome).pretty());
}
