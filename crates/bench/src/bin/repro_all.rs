//! Runs the three-solver × three-game evaluation **once** and prints every
//! run-based artefact of the paper's Sec. 4 from it: Table 1, Fig. 8,
//! Fig. 9 and Fig. 10. Use this instead of the individual binaries when
//! regenerating all results (each individual binary re-runs the full
//! evaluation).
//!
//! `cargo run -p cnash-bench --bin repro_all --release [-- --runs N | --full]`

use cnash_bench::{evaluate_paper_benchmarks, Cli};
use cnash_core::report::{coverage_row, distribution_row, render_table, success_row, tts_row};

fn main() {
    let cli = Cli::parse_for(&["--runs", "--seed", "--full", "--threads"]);
    let evals = evaluate_paper_benchmarks(&cli);
    let all: Vec<&cnash_core::GameReport> = evals.iter().flat_map(|e| e.reports.iter()).collect();

    print!(
        "{}",
        render_table(
            &format!("Table 1 — success rates ({} runs)", cli.runs),
            &["solver", "game", "success %"],
            &all.iter().map(|r| success_row(r)).collect::<Vec<_>>(),
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Fig. 8 — solution distribution (%)",
            &["solver", "game", "error", "pure NE", "mixed NE"],
            &all.iter().map(|r| distribution_row(r)).collect::<Vec<_>>(),
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Fig. 9 — distinct solutions found",
            &["solver", "game", "found", "%"],
            &all.iter().map(|r| coverage_row(r)).collect::<Vec<_>>(),
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Fig. 10 — time to solution",
            &["solver", "game", "mean TTS", "TTS99"],
            &all.iter().map(|r| tts_row(r)).collect::<Vec<_>>(),
        )
    );
}
