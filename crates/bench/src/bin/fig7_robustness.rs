//! Reproduces **Fig. 7**: robustness validation of the crossbar and WTA
//! components.
//!
//! * Fig. 7a — 100 Monte-Carlo instances of a 64×64 crossbar column with
//!   σ(V_TH) = 40 mV and 8 % resistor spread; output current linearity vs
//!   the number of activated cells.
//! * Fig. 7b — WTA settling waveforms across the five process corners.
//!
//! `cargo run -p cnash-bench --bin fig7_robustness --release`

use cnash_core::report::render_table;
use cnash_crossbar::stats::column_linearity_sweep;
use cnash_device::cell::CellParams;
use cnash_device::montecarlo::Stats;
use cnash_device::variability::VariabilityModel;
use cnash_wta::transient::corner_sweep;

fn main() {
    // ---- Fig. 7a: crossbar linearity Monte Carlo ----
    let trials = 100;
    let size = 64;
    let mut r2 = Vec::with_capacity(trials);
    let mut maxdev = Vec::with_capacity(trials);
    let mut slope = Vec::with_capacity(trials);
    for seed in 0..trials as u64 {
        let sweep =
            column_linearity_sweep(size, VariabilityModel::paper(), CellParams::default(), seed);
        r2.push(sweep.r_squared());
        maxdev.push(sweep.max_relative_deviation());
        slope.push(sweep.slope());
    }
    let r2s = Stats::from_samples(&r2);
    let devs = Stats::from_samples(&maxdev);
    let slopes = Stats::from_samples(&slope);
    print!(
        "{}",
        render_table(
            &format!(
                "Fig. 7a — {size}-cell column linearity, {trials} Monte-Carlo runs \
                 (sigma_VTH = 40 mV, 8% resistor)"
            ),
            &["metric", "mean", "std", "min", "max"],
            &[
                vec![
                    "R^2 of linear fit".into(),
                    format!("{:.6}", r2s.mean),
                    format!("{:.2e}", r2s.std),
                    format!("{:.6}", r2s.min),
                    format!("{:.6}", r2s.max),
                ],
                vec![
                    "max relative deviation".into(),
                    format!("{:.4}", devs.mean),
                    format!("{:.2e}", devs.std),
                    format!("{:.4}", devs.min),
                    format!("{:.4}", devs.max),
                ],
                vec![
                    "slope (uA/cell)".into(),
                    format!("{:.4}", slopes.mean * 1e6),
                    format!("{:.2e}", slopes.std * 1e6),
                    format!("{:.4}", slopes.min * 1e6),
                    format!("{:.4}", slopes.max * 1e6),
                ],
            ],
        )
    );

    // A small current-vs-activation excerpt (the figure's x/y data).
    let sweep = column_linearity_sweep(size, VariabilityModel::paper(), CellParams::default(), 0);
    println!("\nexcerpt of sweep 0 (activated cells -> current uA):");
    for &k in &[0usize, 8, 16, 24, 32, 40, 48, 56, 64] {
        println!("  {:2} -> {:.3}", k, sweep.current[k] * 1e6);
    }

    // ---- Fig. 7b: WTA across process corners ----
    println!();
    let rows: Vec<Vec<String>> = corner_sweep(10e-6, 1e-12, 2e-9)
        .into_iter()
        .map(|c| {
            vec![
                c.corner.to_string(),
                format!("{:.3}", c.settling_time * 1e9),
                format!("{:.3}", c.waveform.final_value() * 1e6),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 7b — WTA transient across process corners (10 uA step)",
            &["corner", "1% settling (ns)", "final (uA)"],
            &rows,
        )
    );
    println!(
        "\nReproduced claims: linearity stays near-ideal under the paper's\n\
         device variability, and the WTA settles correctly at every corner\n\
         (slow corners later, fast corners earlier)."
    );
}
