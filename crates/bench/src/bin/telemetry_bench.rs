//! Telemetry overhead harness: the recorder must be (nearly) free.
//!
//! `cargo run --release -p cnash-bench --bin telemetry_bench -- \
//!      [--quick] [--seed S] [--out PATH]`
//!
//! Boots an in-process solver daemon, warms the instance cache with one
//! cold 64×64 solve, then replays the *identical* cache-hit request in
//! interleaved batches with telemetry enabled and disabled
//! (`cnash_telemetry::set_enabled`), comparing the minimum summed
//! server-reported `wall_ms` per batch of each mode. Interleaving (on
//! batch, off batch, on batch, …) decorrelates thermal/scheduler drift
//! from the mode; batching amortises per-request jitter (a single
//! cache hit is ~2 ms, well inside OS-scheduler noise) and the minimum
//! over many batches is the standard low-noise latency estimator.
//!
//! The harness also proves the observability contract along the way:
//! the deterministic payload of every response (timing fields stripped)
//! must be byte-identical whichever mode produced it — telemetry that
//! changed a solver answer is a correctness bug, not an overhead
//! problem.
//!
//! Emits `BENCH_telemetry.json`. Exit status doubles as the CI gate:
//!
//! * exit 2 — protocol error, a repeat request missed the cache, or an
//!   on/off response diverged (telemetry touched solver output),
//! * exit 1 — enabled-mode latency exceeds disabled-mode latency by
//!   more than the 5% gate on the 64×64 cache-hit path,
//! * exit 0 — measurements recorded.

use cnash_bench::client::ServiceConn;
use cnash_bench::Cli;
use cnash_core::report::render_table;
use cnash_runtime::spec::{ConfigSpec, GameSpec, JobSpec, SolverSpec};
use cnash_runtime::Json;
use cnash_service::{serve, strip_timing, ServiceConfig};

/// The gate: enabled-vs-disabled overhead on the 64×64 cache-hit
/// service path must stay under this fraction.
const GATE_OVERHEAD: f64 = 0.05;
const GATE_SIZE: usize = 64;
const ITERATIONS: usize = 300;
/// Cache-hit round trips summed into one timing sample.
const BATCH: usize = 8;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(2);
}

fn solve_request(id: usize, seed: u64) -> String {
    let job = JobSpec {
        game: GameSpec::Random {
            rows: GATE_SIZE,
            cols: GATE_SIZE,
            max_payoff: 3,
            seed,
        },
        solver: SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(ITERATIONS),
            hardware_seed: 0,
        },
        runs: 1,
        base_seed: seed,
        early_stop: None,
        label: Some(format!("telemetry-{GATE_SIZE}x{GATE_SIZE}")),
    };
    Json::obj([
        ("op", Json::str("solve")),
        ("id", Json::num(id as f64)),
        ("job", job.to_json()),
        ("ground_truth", Json::str("skip")),
    ])
    .compact()
}

/// One solve round trip; returns `(cache_hit, wall_ms, stripped doc)`.
fn timed_solve(conn: &mut ServiceConn, request: &str) -> (bool, f64, String) {
    let response = conn
        .round_trip(request)
        .unwrap_or_else(|e| fail(&format!("service connection died: {e}")));
    let mut doc =
        Json::parse(&response).unwrap_or_else(|e| fail(&format!("unparseable response: {e}")));
    if !doc.get("ok").and_then(Json::as_bool).unwrap_or(false) {
        fail(&format!("solve rejected: {response}"));
    }
    let hit = doc
        .get("cache_hit")
        .and_then(Json::as_bool)
        .unwrap_or_else(|e| fail(&format!("response lacks cache_hit: {e}")));
    let wall = doc
        .get("wall_ms")
        .and_then(Json::as_f64)
        .unwrap_or_else(|e| fail(&format!("response lacks wall_ms: {e}")));
    strip_timing(&mut doc);
    if let Json::Obj(map) = &mut doc {
        // cache_hit is false exactly once (the warming request);
        // everything else must be mode-independent.
        map.remove("cache_hit");
        map.remove("id");
    }
    (hit, wall, doc.compact())
}

fn min_of(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn mean_of(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn main() {
    let cli = Cli::parse_for(&["--quick", "--seed", "--out"]);
    let repeats = if cli.quick { 5 } else { 9 };

    let handle = serve(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    })
    .unwrap_or_else(|e| fail(&format!("cannot start in-process daemon: {e}")));
    let mut conn = ServiceConn::connect(handle.addr())
        .unwrap_or_else(|e| fail(&format!("cannot connect: {e}")));

    // Warm the cache (telemetry on — the production default).
    cnash_telemetry::set_enabled(true);
    let mut next_id = 0usize;
    next_id += 1;
    let request = solve_request(next_id, cli.seed.wrapping_add(GATE_SIZE as u64));
    let (hit, _, reference) = timed_solve(&mut conn, &request);
    if hit {
        fail("the warming request already hit the cache");
    }

    eprintln!(
        "measuring {GATE_SIZE}x{GATE_SIZE} cache-hit path, {repeats} interleaved \
         batches of {BATCH} per mode..."
    );
    let mut on_ms = Vec::new();
    let mut off_ms = Vec::new();
    for _ in 0..repeats {
        for (enabled, sink) in [(true, &mut on_ms), (false, &mut off_ms)] {
            cnash_telemetry::set_enabled(enabled);
            let mut batch_ms = 0.0;
            for _ in 0..BATCH {
                let (hit, wall, stripped) = timed_solve(&mut conn, &request);
                if !hit {
                    cnash_telemetry::set_enabled(true);
                    fail("a repeat request missed the cache");
                }
                if stripped != reference {
                    cnash_telemetry::set_enabled(true);
                    fail(&format!(
                        "solver output diverged with telemetry {}:\n  got: {stripped}\n  want: {reference}",
                        if enabled { "enabled" } else { "disabled" },
                    ));
                }
                batch_ms += wall;
            }
            sink.push(batch_ms);
        }
    }
    cnash_telemetry::set_enabled(true);
    let _ = conn.round_trip(r#"{"op":"shutdown"}"#);
    handle.join();

    // Per-request milliseconds, from the quietest batch of each mode.
    let on_min = min_of(&on_ms) / BATCH as f64;
    let off_min = min_of(&off_ms) / BATCH as f64;
    // Negative differences are measurement noise, not a time machine.
    let overhead = ((on_min - off_min) / off_min).max(0.0);

    let on_mean = mean_of(&on_ms) / BATCH as f64;
    let off_mean = mean_of(&off_ms) / BATCH as f64;
    println!(
        "{}",
        render_table(
            "Telemetry recorder overhead on the cache-hit service path",
            &["mode", "wall ms/req (min batch)", "wall ms/req (mean)"],
            &[
                vec![
                    "enabled".into(),
                    format!("{on_min:.3}"),
                    format!("{on_mean:.3}"),
                ],
                vec![
                    "disabled".into(),
                    format!("{off_min:.3}"),
                    format!("{off_mean:.3}"),
                ],
            ],
        )
    );

    let doc = Json::obj([
        ("bench", Json::str("telemetry")),
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(if cli.quick { "quick" } else { "full" })),
        ("seed", Json::uint(cli.seed)),
        ("size", Json::num(GATE_SIZE as f64)),
        ("iterations", Json::num(ITERATIONS as f64)),
        ("repeats", Json::num(repeats as f64)),
        ("batch", Json::num(BATCH as f64)),
        (
            "enabled_ms_per_req",
            Json::obj([("min", Json::Num(on_min)), ("mean", Json::Num(on_mean))]),
        ),
        (
            "disabled_ms_per_req",
            Json::obj([("min", Json::Num(off_min)), ("mean", Json::Num(off_mean))]),
        ),
        (
            "summary",
            Json::obj([
                ("overhead_frac", Json::Num(overhead)),
                ("gate_frac", Json::Num(GATE_OVERHEAD)),
            ]),
        ),
    ]);
    let out_path = cli.out.as_deref().unwrap_or("BENCH_telemetry.json");
    if let Err(e) = std::fs::write(out_path, doc.pretty()) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("wrote {out_path}");

    if overhead > GATE_OVERHEAD {
        eprintln!(
            "FAIL: telemetry overhead {:.1}% > {:.0}% gate on the \
             {GATE_SIZE}x{GATE_SIZE} cache-hit path",
            overhead * 100.0,
            GATE_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "telemetry overhead: {:.2}% (gate: <= {:.0}%)",
        overhead * 100.0,
        GATE_OVERHEAD * 100.0
    );
}
