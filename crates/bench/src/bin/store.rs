//! Solution-store maintenance CLI.
//!
//! `cargo run --release -p cnash-bench --bin store -- \
//!      fsck --store PATH`
//!
//! Subcommands:
//!
//! * `fsck` — read-only integrity scan of a store log: walks every
//!   record frame, re-verifies checksums, and prints the
//!   `cnash_service::FsckReport` as JSON (record/duplicate/corruption
//!   counters, truncated-tail bytes, log size). Unlike opening the
//!   store, `fsck` never rewrites the log — it is safe to run against
//!   a store a live daemon is appending to (the scan sees a prefix).
//!
//! Exit status: 0 — log clean; 1 — corruption found (corrupt records
//! or a truncated tail); 2 — usage error, I/O error, or a foreign file
//! (missing store magic).

use cnash_bench::{usage_lines, Cli};
use cnash_service::SolutionStore;

const SUPPORTED: &[&str] = &["--store", "--help"];

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: store fsck --store PATH");
    eprint!("{}", usage_lines(Some(SUPPORTED)));
    eprintln!("exit codes: 0 log clean, 1 corruption found, 2 usage/IO error");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Subcommand first, then the shared flag table for the rest.
    let (subcommand, rest) = match args.split_first() {
        Some((sub, rest)) if !sub.starts_with("--") => (sub.as_str(), rest),
        _ => {
            if args.iter().any(|a| a == "--help") {
                println!("usage: store fsck --store PATH");
                print!("{}", usage_lines(Some(SUPPORTED)));
                println!("exit codes: 0 log clean, 1 corruption found, 2 usage/IO error");
                return;
            }
            usage("store needs a subcommand (fsck)")
        }
    };
    if subcommand != "fsck" {
        usage(&format!("unknown subcommand `{subcommand}` (try fsck)"));
    }
    let cli = match Cli::parse_from_supporting(rest, Some(SUPPORTED)) {
        Ok(cli) => cli,
        Err(msg) => usage(&msg),
    };
    if cli.help {
        println!("usage: store fsck --store PATH");
        print!("{}", usage_lines(Some(SUPPORTED)));
        println!("exit codes: 0 log clean, 1 corruption found, 2 usage/IO error");
        return;
    }
    let Some(path) = cli.store.as_deref() else {
        usage("fsck needs --store PATH");
    };
    let report = SolutionStore::fsck(path).unwrap_or_else(|e| {
        eprintln!("error: cannot fsck {path}: {e}");
        std::process::exit(2);
    });
    println!("{}", report.to_json().pretty());
    if !report.ok() {
        eprintln!(
            "FAIL: {path}: {} corrupt record(s), {} truncated tail byte(s)",
            report.corrupt_records, report.truncated_tail_bytes
        );
        std::process::exit(1);
    }
}
