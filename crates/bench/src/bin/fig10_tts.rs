//! Reproduces **Fig. 10**: average time to solution of the three solvers,
//! from the CiM iteration-latency model (C-Nash) and the QPU access-time
//! model (baselines).
//!
//! `cargo run -p cnash-bench --bin fig10_tts --release [-- --runs N]`

use cnash_bench::{evaluate_paper_benchmarks, Cli};
use cnash_core::report::{format_time, render_table};

fn main() {
    let cli = Cli::parse_for(&["--runs", "--seed", "--full", "--threads"]);
    let evals = evaluate_paper_benchmarks(&cli);

    let mut rows = Vec::new();
    for eval in &evals {
        let cnash_tts = eval.reports[0].mean_time_to_solution;
        for report in &eval.reports {
            let speedup = if report.solver == "C-Nash" {
                "1X".to_string()
            } else if report.mean_time_to_solution.is_finite() && cnash_tts.is_finite() {
                format!("{:.1}X", report.mean_time_to_solution / cnash_tts)
            } else {
                "-".to_string()
            };
            rows.push(vec![
                report.game.clone(),
                report.solver.clone(),
                format_time(report.mean_time_to_solution),
                format_time(report.tts99),
                speedup,
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &format!("Fig. 10 — time to solution ({} runs)", cli.runs),
            &["game", "solver", "mean TTS", "TTS99", "vs C-Nash"],
            &rows,
        )
    );
    println!(
        "\nPaper reports 105.3–157.9X (2000Q6) and 18.4–79.0X (Advantage 4.1)\n\
         over C-Nash. Our emulation reproduces the ordering and the orders-\n\
         of-magnitude gap; the exact ratio depends on the QPU access-time\n\
         constants and the CiM latency model (see cnash-core::timing)."
    );
}
