//! Reproduces **Fig. 8**: the distribution of solutions (error / pure NE /
//! mixed NE) each solver returns across its SA runs, per game.
//!
//! `cargo run -p cnash-bench --bin fig8_distribution --release [-- --runs N]`

use cnash_bench::{evaluate_paper_benchmarks, Cli};
use cnash_core::report::{distribution_row, render_table};

fn main() {
    let cli = Cli::parse_for(&["--runs", "--seed", "--full", "--threads"]);
    let evals = evaluate_paper_benchmarks(&cli);

    for eval in &evals {
        let rows: Vec<Vec<String>> = eval.reports.iter().map(distribution_row).collect();
        print!(
            "{}",
            render_table(
                &format!(
                    "Fig. 8 — solution distribution for {} ({} runs)",
                    eval.bench.game.name(),
                    cli.runs
                ),
                &["solver", "game", "error %", "pure NE %", "mixed NE %"],
                &rows,
            )
        );
        println!();
    }
    println!(
        "Reproduced claims: only C-Nash ever returns mixed-NE solutions (the\n\
         S-QUBO baselines are structurally pure-only), and baseline error\n\
         fractions grow with game size."
    );
}
