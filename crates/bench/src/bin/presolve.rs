//! Offline pre-solve sweeper: fills a persistent solution store so a
//! later `serviced --store` daemon warm-boots with every swept job
//! answerable from disk.
//!
//! `cargo run --release -p cnash-bench --bin presolve -- \
//!      --store PATH [--quick] [--seed S] [--threads T] \
//!      [--emit-requests PATH]`
//!
//! Sweeps the `diffcheck` family × size × seed grid (`--quick` for the
//! reduced CI grid) through `cnash_service::execute_solve` — the exact
//! function the live daemon runs — with the store attached, so every
//! record is byte-identical to what a daemon would have produced and
//! appended itself. Sweeping both C-Nash presets (paper and ideal
//! hardware) covers the solver grid a service client is most likely to
//! repeat.
//!
//! The sweep is **resumable**: a grid point already in the store comes
//! back as a disk hit (`"cache":"disk"`) in O(lookup) and is counted
//! `skipped`, so re-running after an interruption only solves the
//! remainder. Work is fanned across the `cnash-runtime` worker pool
//! (`--threads`, `0` = all cores); since each job's payload is
//! deterministic, the store's contents are identical at any thread
//! count.
//!
//! With `--emit-requests PATH` the sweeper also writes the swept jobs
//! as service request lines (`{"op":"solve","id":…,"job":…}` JSON
//! lines), ready to replay against a daemon with `service_client
//! --requests` — the store-smoke CI job replays them to prove every
//! presolved job is served from disk.
//!
//! Exit status: 0 — sweep complete; 1 — one or more jobs failed
//! (`ok:false` response); 2 — usage or I/O error.

use cnash_bench::diffcheck::{family_grid, DiffOptions};
use cnash_bench::{usage_lines, Cli};
use cnash_runtime::pool::fan_out_ordered;
use cnash_runtime::spec::{ConfigSpec, JobSpec, SolverSpec};
use cnash_runtime::{CancelToken, Json};
use cnash_service::{execute_solve, InstanceCache, SolutionStore, TruthPolicy};
use std::io::Write;
use std::ops::ControlFlow;

const SUPPORTED: &[&str] = &[
    "--store",
    "--quick",
    "--seed",
    "--threads",
    "--emit-requests",
    "--help",
];

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// The swept jobs: the diffcheck game grid × both C-Nash presets, with
/// the diffcheck iteration budgets. Ground truth is always skipped —
/// presolving is about solver payloads, not oracle coverage.
fn sweep_jobs(quick: bool, base_seed: u64) -> Vec<JobSpec> {
    let opts = DiffOptions::new(quick, base_seed, false);
    let iterations = if quick { 800 } else { 3000 };
    let runs = if quick { 2 } else { 4 };
    let solvers = [
        SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(iterations),
            hardware_seed: 1,
        },
        SolverSpec::CNash {
            config: ConfigSpec::ideal(12).with_iterations(iterations),
            hardware_seed: 1,
        },
    ];
    let mut jobs = Vec::new();
    for game in family_grid(&opts) {
        for solver in &solvers {
            jobs.push(JobSpec {
                game: game.clone(),
                solver: solver.clone(),
                runs,
                base_seed,
                early_stop: None,
                label: None,
            });
        }
    }
    jobs
}

/// The request line a service client would send for `job` — replaying
/// these against a `--store` daemon must produce all disk hits.
fn request_line(id: usize, job: &JobSpec) -> String {
    Json::obj([
        ("op", Json::str("solve")),
        ("id", Json::num(id as f64)),
        ("job", job.to_json()),
        ("ground_truth", Json::str("skip")),
    ])
    .compact()
}

fn main() {
    let cli = Cli::parse_for(SUPPORTED);
    if cli.help {
        println!("usage: presolve --store PATH [flags]");
        print!("{}", usage_lines(Some(SUPPORTED)));
        println!("exit codes: 0 sweep complete, 1 job(s) failed, 2 usage/IO error");
        return;
    }
    let Some(store_path) = cli.store.as_deref() else {
        fail("presolve needs --store PATH");
    };
    let store = SolutionStore::open(store_path)
        .unwrap_or_else(|e| fail(&format!("cannot open store {store_path}: {e}")));
    let report = store.open_report();
    eprintln!(
        "store {store_path}: {} records resident{}",
        report.records,
        if report.compacted {
            format!(
                " (recovered: {} corrupt skipped, {} tail bytes dropped)",
                report.corrupt_skipped, report.truncated_tail_bytes
            )
        } else {
            String::new()
        }
    );

    let jobs = sweep_jobs(cli.quick, cli.seed);
    if let Some(path) = cli.emit_requests.as_deref() {
        let mut out = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
        for (i, job) in jobs.iter().enumerate() {
            writeln!(out, "{}", request_line(i + 1, job))
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        }
        eprintln!("wrote {} request lines to {path}", jobs.len());
    }

    let cache = InstanceCache::new();
    let cancel = CancelToken::new();
    let (mut solved, mut skipped, mut failed) = (0usize, 0usize, 0usize);
    fan_out_ordered(
        jobs.len(),
        cli.threads,
        &cancel,
        |i| {
            execute_solve(
                &cache,
                Some(&store),
                &jobs[i],
                TruthPolicy::Skip,
                1,
                &cancel,
                &Json::Null,
            )
        },
        |i, response| {
            if !response.get("ok").and_then(Json::as_bool).unwrap_or(false) {
                eprintln!("FAIL: job {i} rejected: {}", response.compact());
                failed += 1;
            } else if response
                .get("cache")
                .and_then(Json::as_str)
                .map(|c| c == "disk")
                .unwrap_or(false)
            {
                skipped += 1;
            } else {
                solved += 1;
            }
            ControlFlow::Continue(())
        },
    );

    let summary = Json::obj([
        (
            "presolve",
            Json::str(if cli.quick { "quick" } else { "full" }),
        ),
        ("jobs", Json::uint(jobs.len() as u64)),
        ("solved", Json::uint(solved as u64)),
        ("skipped", Json::uint(skipped as u64)),
        ("failed", Json::uint(failed as u64)),
        ("records", Json::uint(store.len())),
        ("store", Json::str(store_path)),
    ]);
    println!("{}", summary.compact());
    if failed > 0 {
        std::process::exit(1);
    }
}
