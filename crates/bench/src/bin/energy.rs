//! Energy estimates (extension): per-iteration and per-solution energy of
//! the C-Nash pipeline from the first-order CiM energy model, per game.
//!
//! `cargo run -p cnash-bench --bin energy --release`

use cnash_core::energy::CimEnergyModel;
use cnash_core::report::render_table;
use cnash_core::{CNashConfig, CNashSolver, ExperimentRunner};
use cnash_crossbar::{BiCrossbar, CrossbarConfig};
use cnash_game::games;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::MixedStrategy;

fn main() {
    let model = CimEnergyModel::nominal();
    let runner = ExperimentRunner::new(100, 0);
    let mut rows = Vec::new();
    for bench in games::paper_benchmarks() {
        let game = &bench.game;
        let n = game.row_actions();
        let m = game.col_actions();
        let hw = BiCrossbar::build(game, &CrossbarConfig::paper(12), 0).expect("maps");
        let p = MixedStrategy::uniform(n).expect("valid");
        let q = MixedStrategy::uniform(m).expect("valid");
        let wta_cells = (1usize << (n.max(2) as f64).log2().ceil() as u32) - 1
            + (1usize << (m.max(2) as f64).log2().ceil() as u32)
            - 1;
        let e_iter = model
            .iteration_energy(&hw, &p, &q, 8, wta_cells)
            .expect("reads");

        // Mean iterations to first detection from actual runs.
        let cfg = CNashConfig::paper(12).with_iterations(bench.paper_iterations / 5);
        let solver = CNashSolver::new(game, cfg, 0).expect("maps");
        let truth = enumerate_equilibria(game, 1e-9);
        let report = runner.evaluate(&solver, &truth);
        let iters_to_hit = report.mean_time_to_solution / solver.iteration_latency();
        let e_solution = e_iter * iters_to_hit;

        rows.push(vec![
            game.name().to_string(),
            format!("{:.2}", e_iter * 1e12),
            format!("{:.0}", iters_to_hit),
            format!("{:.2}", e_solution * 1e9),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Energy model (extension) — paper-config hardware, uniform-state iteration",
            &[
                "game",
                "E/iteration (pJ)",
                "iters to solution",
                "E/solution (nJ)"
            ],
            &rows,
        )
    );
    println!(
        "\nFor context, a single D-Wave anneal-read dissipates on the order\n\
         of the cryostat's milliwatt-scale budget over ~160 us — many\n\
         orders of magnitude above the nJ-scale CiM solution energies\n\
         estimated here (the paper's Sec. 2.3 efficiency argument)."
    );
}
