//! Regenerates the device-level figures: FeFET ID–VG curves (Fig. 2b),
//! 1FeFET1R ON-current-variability suppression (Fig. 2d) and the WTA cell
//! transient (Fig. 5c).
//!
//! `cargo run -p cnash-bench --bin device_characteristics --release`

use cnash_core::report::render_table;
use cnash_device::cell::{CellParams, OneFeFetOneR};
use cnash_device::fefet::{FeFet, FeFetState};
use cnash_device::montecarlo::Stats;
use cnash_device::variability::VariabilityModel;
use cnash_wta::transient::cell_transient;
use cnash_wta::WtaConfig;

fn main() {
    // ---- Fig. 2b: ID-VG of the two states ----
    let on = FeFet::ideal(FeFetState::LowVth);
    let off = FeFet::ideal(FeFetState::HighVth);
    println!("Fig. 2b — FeFET ID-VG (A), 0..2 V:");
    println!("  VG     I('1')      I('0')");
    for (vg, i1) in on.id_vg_sweep(0.0, 2.0, 9) {
        let i0 = off.drain_current(vg);
        println!("  {vg:.2}  {i1:.3e}  {i0:.3e}");
    }

    // ---- Fig. 2d: ON-current spread, bare FeFET vs 1FeFET1R ----
    // The bare FeFET's read current is exponentially sensitive to V_TH
    // near threshold and still overdrive-sensitive deep-ON; the series
    // resistor clamps the selected current to ~V_DL/R so only the 8 %
    // resistor spread survives, *independent of the read voltage*.
    let devices = 60; // the paper overlays 60 devices
    let samples = VariabilityModel::paper().sample_many(devices, 42);
    let mut rows = Vec::new();
    for vg in [0.5f64, 0.65, 0.8] {
        let bare: Vec<f64> = samples
            .iter()
            .map(|s| {
                FeFet::new(FeFetState::LowVth, Default::default(), s.delta_vth).drain_current(vg)
            })
            .collect();
        let params = CellParams {
            v_wl_read: vg,
            ..CellParams::default()
        };
        let clamped: Vec<f64> = samples
            .iter()
            .map(|&s| OneFeFetOneR::new(FeFetState::LowVth, params, s).output_current(true, true))
            .collect();
        let bare_stats = Stats::from_samples(&bare);
        let clamp_stats = Stats::from_samples(&clamped);
        rows.push(vec![
            format!("{vg:.2}"),
            format!("{:.3}", bare_stats.cv()),
            format!("{:.3}", clamp_stats.cv()),
            format!("{:.1}X", bare_stats.cv() / clamp_stats.cv()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &format!("Fig. 2d — ON-current spread (CV) over {devices} devices"),
            &["read VG (V)", "bare FeFET CV", "1FeFET1R CV", "suppression"],
            &rows,
        )
    );
    println!();

    // ---- Fig. 5c: WTA cell transient ----
    let w = cell_transient(&WtaConfig::nominal(), 10e-6, 5e-12, 0.5e-9);
    println!("Fig. 5c — WTA cell transient (10 uA step):");
    for (t, v) in w.points().iter().step_by(10) {
        println!("  {:.3} ns -> {:.3} uA", t * 1e9, v * 1e6);
    }
    println!(
        "1% settling: {:.3} ns (paper: 0.08 ns)",
        w.settling_time(0.01).expect("settles") * 1e9
    );
}
