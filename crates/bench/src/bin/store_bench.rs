//! Solution-store performance harness: cold solve vs disk-hit replay,
//! across a daemon restart.
//!
//! `cargo run --release -p cnash-bench --bin store_bench -- \
//!      [--quick] [--seed S] [--out PATH] [--store PATH]`
//!
//! Boots an in-process solver daemon with a persistent store attached
//! and measures, per game size: one **cold** request (program, anneal,
//! append), then repeated identical requests answered **from disk**
//! (`"cache":"disk"`, O(lookup) — no programming, no anneal). The
//! daemon is then shut down and a **second** daemon is booted on the
//! same store path: its first request per size must also be a disk hit,
//! proving the warm boot survives a restart. Every disk-served payload
//! is checked byte-identical to the cold response modulo provenance
//! (`id`, `cache`, `wall_ms`, `program_ms`).
//!
//! Latencies are the server-reported `wall_ms`. Without `--store` the
//! harness uses (and removes) a throwaway log under the system temp
//! directory; with `--store PATH` the log is yours and is kept.
//!
//! Emits `BENCH_store.json`. Exit status doubles as the CI gate:
//!
//! * exit 2 — protocol error, a repeat or post-restart request missed
//!   the store, or a disk payload diverged from the cold solve,
//! * exit 1 — disk hits at the 64×64 gate size are not at least 1.5×
//!   faster than the cold solve (the store stopped paying for itself),
//! * exit 0 — measurements recorded.

use cnash_bench::client::ServiceConn;
use cnash_bench::Cli;
use cnash_core::report::render_table;
use cnash_runtime::spec::{ConfigSpec, GameSpec, JobSpec, SolverSpec};
use cnash_runtime::Json;
use cnash_service::{serve, ServiceConfig, ServiceHandle};

/// The gate size: disk-hit speedup at 64×64 must stay ≥ this factor.
const GATE_SIZE: usize = 64;
const GATE_SPEEDUP: f64 = 1.5;
/// Disk-hit repeats per grid point (the minimum is reported).
const HIT_REPEATS: usize = 5;

struct Entry {
    label: String,
    size: usize,
    iterations: usize,
    cold_ms: f64,
    disk_ms_min: f64,
    disk_ms_mean: f64,
    /// First-request latency against the restarted daemon (a warm-boot
    /// disk hit).
    warm_ms: f64,
    /// The cold payload normalised modulo provenance — what every disk
    /// hit must replay byte-identically.
    normalised: String,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.disk_ms_min
    }

    fn json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("size", Json::num(self.size as f64)),
            ("iterations", Json::num(self.iterations as f64)),
            ("cold_ms", Json::Num(self.cold_ms)),
            ("disk_ms_min", Json::Num(self.disk_ms_min)),
            ("disk_ms_mean", Json::Num(self.disk_ms_mean)),
            ("warm_restart_ms", Json::Num(self.warm_ms)),
            ("speedup", Json::Num(self.speedup())),
        ])
    }
}

fn solve_request(id: usize, size: usize, iterations: usize, seed: u64) -> String {
    let job = JobSpec {
        game: GameSpec::Random {
            rows: size,
            cols: size,
            max_payoff: 3,
            seed,
        },
        solver: SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(iterations),
            hardware_seed: 0,
        },
        runs: 1,
        base_seed: seed,
        early_stop: None,
        label: Some(format!("store-{size}x{size}")),
    };
    Json::obj([
        ("op", Json::str("solve")),
        ("id", Json::num(id as f64)),
        ("job", job.to_json()),
        ("ground_truth", Json::str("skip")),
    ])
    .compact()
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(2);
}

/// Strips the per-call provenance (`id`, `cache`, timing) so a disk
/// replay can be compared byte-for-byte against the cold solve.
fn normalise(doc: &Json) -> String {
    let mut doc = doc.clone();
    if let Json::Obj(map) = &mut doc {
        map.remove("id");
        map.remove("cache");
        map.remove("wall_ms");
        map.remove("program_ms");
    }
    doc.compact()
}

/// One solve round trip; returns `(from_disk, wall_ms, normalised)`.
fn timed_solve(conn: &mut ServiceConn, request: &str) -> (bool, f64, String) {
    let response = conn
        .round_trip(request)
        .unwrap_or_else(|e| fail(&format!("service connection died: {e}")));
    let doc =
        Json::parse(&response).unwrap_or_else(|e| fail(&format!("unparseable response: {e}")));
    if !doc.get("ok").and_then(Json::as_bool).unwrap_or(false) {
        fail(&format!("solve rejected: {response}"));
    }
    let from_disk = doc
        .get("cache")
        .and_then(Json::as_str)
        .map(|c| c == "disk")
        .unwrap_or(false);
    let wall = doc
        .get("wall_ms")
        .and_then(Json::as_f64)
        .unwrap_or_else(|e| fail(&format!("response lacks wall_ms: {e}")));
    let normalised = normalise(&doc);
    (from_disk, wall, normalised)
}

fn boot(store_path: &str) -> (ServiceHandle, ServiceConn) {
    let handle = serve(ServiceConfig {
        shards: 2,
        store_path: Some(store_path.to_string()),
        ..ServiceConfig::default()
    })
    .unwrap_or_else(|e| fail(&format!("cannot start in-process daemon: {e}")));
    let conn = ServiceConn::connect(handle.addr())
        .unwrap_or_else(|e| fail(&format!("cannot connect: {e}")));
    (handle, conn)
}

fn main() {
    let cli = Cli::parse_for(&["--quick", "--seed", "--out", "--store"]);
    let seed = cli.seed;
    let (store_path, throwaway) = match cli.store.clone() {
        Some(path) => (path, false),
        None => {
            let path =
                std::env::temp_dir().join(format!("cnash-store-bench-{}.log", std::process::id()));
            (path.to_string_lossy().into_owned(), true)
        }
    };

    // `(size, iterations)` grid; the 64×64 gate point belongs to every
    // grid, quick or full.
    let grid: Vec<(usize, usize)> = if cli.quick {
        vec![(16, 600), (64, 250)]
    } else {
        vec![(16, 1200), (32, 600), (64, 300)]
    };

    // Daemon A: cold solves populate the store, repeats replay it.
    let (handle, mut conn) = boot(&store_path);
    let mut entries = Vec::new();
    let mut next_id = 0usize;
    for &(size, iterations) in &grid {
        eprintln!("measuring {size}x{size} ({iterations} iters, {HIT_REPEATS} disk repeats)...");
        next_id += 1;
        let request = solve_request(next_id, size, iterations, seed.wrapping_add(size as u64));
        let (from_disk, cold_ms, normalised) = timed_solve(&mut conn, &request);
        if from_disk {
            fail(&format!(
                "first {size}x{size} request was already on disk (stale --store log?)"
            ));
        }
        let mut hits = Vec::new();
        for _ in 0..HIT_REPEATS {
            // Identical job spec → same store key → must be a disk hit.
            let (from_disk, wall, replay) = timed_solve(&mut conn, &request);
            if !from_disk {
                fail(&format!("repeat {size}x{size} request missed the store"));
            }
            if replay != normalised {
                fail(&format!(
                    "{size}x{size} disk replay diverged from the cold solve:\n  cold: {normalised}\n  disk: {replay}"
                ));
            }
            hits.push(wall);
        }
        let disk_ms_min = hits.iter().copied().fold(f64::INFINITY, f64::min);
        let disk_ms_mean = hits.iter().sum::<f64>() / hits.len() as f64;
        entries.push(Entry {
            label: format!("store-{size}x{size}"),
            size,
            iterations,
            cold_ms,
            disk_ms_min,
            disk_ms_mean,
            warm_ms: f64::NAN,
            normalised,
        });
    }
    let _ = conn.round_trip(r#"{"op":"shutdown"}"#);
    handle.join();

    // Daemon B on the same path: the warm boot must serve every grid
    // point from disk on the very first request.
    let (handle, mut conn) = boot(&store_path);
    let warm_records = handle.store().map(|s| s.open_report().records).unwrap_or(0);
    let mut next_id = 0usize;
    for entry in &mut entries {
        next_id += 1;
        let request = solve_request(
            next_id,
            entry.size,
            entry.iterations,
            seed.wrapping_add(entry.size as u64),
        );
        let (from_disk, wall, replay) = timed_solve(&mut conn, &request);
        if !from_disk {
            fail(&format!(
                "post-restart {0}x{0} request missed the store — warm boot lost the record",
                entry.size
            ));
        }
        if replay != entry.normalised {
            fail(&format!(
                "post-restart {0}x{0} replay diverged from the cold solve",
                entry.size
            ));
        }
        entry.warm_ms = wall;
    }
    let _ = conn.round_trip(r#"{"op":"shutdown"}"#);
    handle.join();
    if throwaway {
        let _ = std::fs::remove_file(&store_path);
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.label.clone(),
                format!("{:.2}", e.cold_ms),
                format!("{:.3}", e.disk_ms_min),
                format!("{:.3}", e.disk_ms_mean),
                format!("{:.3}", e.warm_ms),
                format!("{:.1}x", e.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Store latency: cold (program + solve + append) vs disk-hit replay",
            &[
                "case",
                "cold ms",
                "disk ms (min)",
                "disk ms (mean)",
                "restart ms",
                "speedup"
            ],
            &rows,
        )
    );

    let gate = entries
        .iter()
        .find(|e| e.size == GATE_SIZE)
        .map(Entry::speedup);
    let doc = Json::obj([
        ("bench", Json::str("store")),
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(if cli.quick { "quick" } else { "full" })),
        ("seed", Json::num(seed as f64)),
        ("warm_boot_records", Json::uint(warm_records)),
        (
            "entries",
            Json::Arr(entries.iter().map(Entry::json).collect()),
        ),
        (
            "summary",
            Json::obj([
                (
                    "speedup_min",
                    Json::Num(
                        entries
                            .iter()
                            .map(Entry::speedup)
                            .fold(f64::INFINITY, f64::min),
                    ),
                ),
                ("speedup_64x64", gate.map(Json::Num).unwrap_or(Json::Null)),
                ("gate_speedup", Json::Num(GATE_SPEEDUP)),
            ]),
        ),
    ]);
    let out_path = cli.out.as_deref().unwrap_or("BENCH_store.json");
    if let Err(e) = std::fs::write(out_path, doc.pretty()) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("wrote {out_path}");

    match gate {
        Some(s) if s < GATE_SPEEDUP => {
            eprintln!(
                "FAIL: {GATE_SIZE}x{GATE_SIZE} disk-hit speedup {s:.2}x < {GATE_SPEEDUP}x — \
                 the solution store no longer pays for itself"
            );
            std::process::exit(1);
        }
        Some(s) => {
            println!("{GATE_SIZE}x{GATE_SIZE} disk-hit speedup: {s:.2}x (gate: >= {GATE_SPEEDUP}x)")
        }
        None => println!("note: no {GATE_SIZE}x{GATE_SIZE} point in this grid"),
    }
}
