//! Differential oracle fuzzing over the structured game families.
//!
//! `cargo run --release -p cnash-bench --bin diffcheck -- \
//!      [--quick] [--seed S] [--corrupt] [--out PATH] [--jobs-file PATH]`
//!
//! Grid mode (default) sweeps the family × size × seed grid
//! (`cnash_bench::diffcheck`): per point it cross-checks the two exact
//! oracles against each other, then runs every solver in the suite and
//! certificate-verifies each claimed equilibrium. `--quick` is the
//! PR-time grid; the nightly CI job runs the full grid with a
//! date-derived `--seed`.
//!
//! On a mismatch the offending game is minimized by action deletion and
//! written to `--out` (default `DIFFCHECK_counterexample.json`) as a
//! single-run jobs file with explicit payoffs. `--jobs-file PATH`
//! replays such a file, re-verifying every claim — how a nightly
//! counterexample artifact is reproduced locally.
//!
//! `--corrupt` wraps every solver in a deliberate liar (claimed hits
//! swapped for worst responses): the run must fail with a minimized
//! counterexample, proving the failure path end to end. A counterexample
//! produced under `--corrupt` replays with `--corrupt`.
//!
//! Exits 0 when every claim verified, 1 on a differential failure
//! (counterexample written in grid mode), 2 on usage/configuration
//! errors. The machine-readable sweep summary goes to stdout.

use cnash_bench::diffcheck::{
    family_grid, replay, run_grid, solver_suite, summary_json, DiffOptions,
};
use cnash_bench::Cli;
use cnash_runtime::BatchSpec;

fn main() {
    let cli = Cli::parse_for(&["--quick", "--seed", "--corrupt", "--out", "--jobs-file"]);

    let (outcome, grid_mode) = if let Some(path) = &cli.jobs_file {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let spec = match BatchSpec::from_json(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        };
        (replay(&spec, cli.corrupt), false)
    } else {
        let opts = DiffOptions::new(cli.quick, cli.seed, cli.corrupt);
        let points = family_grid(&opts);
        let solvers = solver_suite(&opts);
        eprintln!(
            "diffcheck: {} grid points x {} solvers x {} runs{}{}",
            points.len(),
            solvers.len(),
            opts.runs,
            if opts.quick { " (--quick)" } else { "" },
            if opts.corrupt {
                " [CORRUPT test hook active]"
            } else {
                ""
            }
        );
        (run_grid(&points, &solvers, &opts), true)
    };

    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!("{}", summary_json(&outcome).pretty());
    let Some(failure) = &outcome.failure else {
        return;
    };

    eprintln!("error: {}: {}", failure.class.name(), failure.detail);
    if grid_mode {
        let path = cli
            .out
            .as_deref()
            .unwrap_or("DIFFCHECK_counterexample.json");
        if let Err(e) = std::fs::write(path, failure.counterexample.to_json().pretty()) {
            eprintln!("error: cannot write counterexample to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("counterexample written to {path}");
        eprintln!(
            "replay with: cargo run --release -p cnash-bench --bin diffcheck -- --jobs-file {path}{}",
            if cli.corrupt { " --corrupt" } else { "" }
        );
    }
    std::process::exit(1);
}
