//! Differential oracle fuzzing over the structured game families.
//!
//! `cargo run --release -p cnash-bench --bin diffcheck -- \
//!      [--quick] [--seed S] [--threads T] [--corrupt] [--out PATH] \
//!      [--jobs-file PATH] [--help]`
//!
//! Grid mode (default) sweeps the family × size × seed grid
//! (`cnash_bench::diffcheck`) on the `cnash-runtime` worker pool
//! (`--threads`, 0 = all cores; results are folded in grid order, so
//! the summary and any counterexample are bit-identical at any thread
//! count): per point it cross-checks the two float oracles against
//! each other **and against the exact-rational trust anchor**
//! (`cnash_game::exact_enum` over `cnash-exact` big-int fractions),
//! then runs every solver in the suite and certificate-verifies each
//! claimed equilibrium, matching continuum (unlisted-valid) hits
//! structurally by support-pair class — including the exact oracle's
//! simplex vertex representatives of exactly-singular support pairs,
//! which drive the summary's `unclassified` count to zero.
//! `--quick` is the PR-time grid; the nightly CI job runs the full
//! grid with a date-derived `--seed`.
//!
//! On a mismatch the offending game is minimized (action deletion,
//! payoff-scale halving, cell zeroing) and written to `--out` (default
//! `DIFFCHECK_counterexample.json`) as a single-run jobs file with
//! explicit payoffs. `--jobs-file PATH` replays such a file,
//! re-verifying every claim — how a nightly counterexample artifact is
//! reproduced locally.
//!
//! `--corrupt` wraps every solver in a deliberate liar (claimed hits
//! swapped for worst responses): the run must fail with a minimized
//! counterexample, proving the failure path end to end. A counterexample
//! produced under `--corrupt` replays with `--corrupt`.
//!
//! Exit codes (also printed by `--help`): `0` — every claim verified
//! (in replay mode this means the counterexample **no longer
//! reproduces**); `1` — differential failure (counterexample written
//! in grid mode, reproduced in replay mode); `2` — usage or
//! configuration errors; `3` — the `--jobs-file` could not be read or
//! parsed (distinct from `0` so triage scripts can tell "fixed" from
//! "wrong file"). The machine-readable sweep summary goes to stdout.

use cnash_bench::diffcheck::{
    family_grid, replay, run_grid, solver_suite, summary_json, DiffOptions,
};
use cnash_bench::{usage_lines, Cli};
use cnash_runtime::BatchSpec;

const SUPPORTED: &[&str] = &[
    "--quick",
    "--seed",
    "--threads",
    "--corrupt",
    "--out",
    "--jobs-file",
    "--help",
];

fn print_help() {
    println!("usage: diffcheck [flags]");
    println!();
    println!("Differential oracle fuzzing over the family x size x seed grid.");
    println!();
    print!("{}", usage_lines(Some(SUPPORTED)));
    println!();
    println!("mismatch classes (failure_class in the summary):");
    println!("  false_equilibrium          a solver claimed a hit the certificate");
    println!("                             rejects [witness: float]");
    println!("  oracle_disagreement        the float oracles disagree (Lemke-Howson");
    println!("                             vs support enumeration) [witness: float]");
    println!("  exact_oracle_disagreement  the exact-rational trust anchor refuted a");
    println!("                             float-oracle result; the detail records");
    println!("                             the witnessing oracle ([witness: float] =");
    println!("                             a float equilibrium whose exact regret");
    println!("                             exceeds the claiming tolerance,");
    println!("                             [witness: exact] = an exactly-certified");
    println!("                             equilibrium failing float verification)");
    println!();
    println!("minimized counterexamples carry the witness marker in their job label,");
    println!("so a replayed artifact states which oracle observed the failure.");
    println!();
    println!("exit codes:");
    println!("  0  every claim verified (replay mode: the counterexample no");
    println!("     longer reproduces)");
    println!("  1  differential failure found (grid mode: minimized");
    println!("     counterexample written to --out; replay mode: reproduced)");
    println!("  2  usage or configuration errors (bad flags, invalid specs)");
    println!("  3  --jobs-file could not be read or parsed (I/O failure,");
    println!("     malformed JSON) — distinct from 0 so scripts can tell");
    println!("     \"fixed\" from \"wrong file\"");
}

fn main() {
    let cli = Cli::parse_for(SUPPORTED);
    if cli.help {
        print_help();
        return;
    }

    let (outcome, grid_mode) = if let Some(path) = &cli.jobs_file {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(3);
            }
        };
        let spec = match BatchSpec::from_json(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(3);
            }
        };
        (replay(&spec, cli.corrupt), false)
    } else {
        let opts = DiffOptions::new(cli.quick, cli.seed, cli.corrupt).with_threads(cli.threads);
        let points = family_grid(&opts);
        let solvers = solver_suite(&opts);
        eprintln!(
            "diffcheck: {} grid points x {} solvers x {} runs, {} threads{}{}",
            points.len(),
            solvers.len(),
            opts.runs,
            if opts.threads == 0 {
                "all".to_string()
            } else {
                opts.threads.to_string()
            },
            if opts.quick { " (--quick)" } else { "" },
            if opts.corrupt {
                " [CORRUPT test hook active]"
            } else {
                ""
            }
        );
        (run_grid(&points, &solvers, &opts), true)
    };

    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!("{}", summary_json(&outcome).pretty());
    let Some(failure) = &outcome.failure else {
        return;
    };

    eprintln!("error: {}: {}", failure.class.name(), failure.detail);
    if grid_mode {
        let path = cli
            .out
            .as_deref()
            .unwrap_or("DIFFCHECK_counterexample.json");
        if let Err(e) = std::fs::write(path, failure.counterexample.to_json().pretty()) {
            eprintln!("error: cannot write counterexample to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("counterexample written to {path}");
        eprintln!(
            "replay with: cargo run --release -p cnash-bench --bin diffcheck -- --jobs-file {path}{}",
            if cli.corrupt { " --corrupt" } else { "" }
        );
    }
    std::process::exit(1);
}
