//! Reproduces **Table 1**: success rates of finding an NE solution for
//! C-Nash vs D-Wave 2000Q6 vs D-Wave Advantage 4.1 on the three benchmark
//! games.
//!
//! `cargo run -p cnash-bench --bin table1 --release [-- --runs N | --full]`

use cnash_bench::{evaluate_paper_benchmarks, Cli};
use cnash_core::report::render_table;

/// Paper-reported values for side-by-side comparison (rows match the
/// solver order; `None` = not reported in the paper).
const PAPER: [[Option<f64>; 3]; 3] = [
    // C-Nash, 2000Q6, Advantage 4.1 per game:
    [Some(100.0), Some(99.62), Some(98.04)], // Battle of the Sexes
    [Some(88.94), Some(88.16), Some(72.36)], // Bird Game
    [Some(81.90), None, Some(13.30)],        // Modified Prisoner's Dilemma
];

fn main() {
    let cli = Cli::parse_for(&["--runs", "--seed", "--full", "--threads"]);
    let evals = evaluate_paper_benchmarks(&cli);

    let mut rows = Vec::new();
    for (g, eval) in evals.iter().enumerate() {
        // Solver order in reports: [C-Nash, 2000Q6, Advantage]; paper
        // column order per game: [C-Nash, 2000Q6, Advantage].
        for (s, report) in eval.reports.iter().enumerate() {
            let paper = PAPER[g][s]
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_string());
            rows.push(vec![
                report.game.clone(),
                report.solver.clone(),
                format!("{:.2}", report.success_rate),
                paper,
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &format!(
                "Table 1 — success rate of finding an NE solution ({} runs/solver/game)",
                cli.runs
            ),
            &["game", "solver", "measured %", "paper %"],
            &rows,
        )
    );
    println!(
        "\nNote: absolute rates depend on the emulated-QPU calibration; the\n\
         reproduced claims are the ordering (C-Nash ≥ 2000Q6 ≥ Advantage) and\n\
         the degradation of the S-QUBO baselines with game size."
    );
}
