//! Reproduces **Fig. 9**: proportion of distinct ground-truth equilibria
//! each solver discovers across all of its runs.
//!
//! `cargo run -p cnash-bench --bin fig9_coverage --release [-- --runs N]`

use cnash_bench::{evaluate_paper_benchmarks, Cli};
use cnash_core::report::{coverage_row, render_table};

fn main() {
    let cli = Cli::parse_for(&["--runs", "--seed", "--full", "--threads"]);
    let evals = evaluate_paper_benchmarks(&cli);

    let mut rows = Vec::new();
    for eval in &evals {
        for report in &eval.reports {
            rows.push(coverage_row(report));
        }
    }
    print!(
        "{}",
        render_table(
            &format!(
                "Fig. 9 — distinct NE solutions found over {} runs (found/target, %)",
                cli.runs
            ),
            &["solver", "game", "found", "%"],
            &rows,
        )
    );

    println!("\nDistinct solutions found by C-Nash:");
    for eval in &evals {
        let cnash = &eval.reports[0];
        println!(
            "  {} ({} of {}):",
            eval.bench.game.name(),
            cnash.covered,
            cnash.target_count
        );
        for eq in &cnash.distinct_found {
            println!("    [{}] {eq}", eq.kind(1e-6));
        }
    }
    println!(
        "\nReproduced claim: C-Nash discovers all (or nearly all) equilibria\n\
         including every mixed one, while the baselines plateau at a subset\n\
         of the pure equilibria."
    );
}
