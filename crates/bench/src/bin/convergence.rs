//! SA convergence traces (extension): prints an ASCII view of the
//! measured objective over one run per benchmark, showing the Metropolis
//! walk cooling into an equilibrium (the behaviour behind Alg. 1).
//!
//! `cargo run -p cnash-bench --bin convergence --release`

use cnash_anneal::engine::{simulated_annealing, SaOptions};
use cnash_anneal::moves::GridStrategyPair;
use cnash_core::{CNashConfig, CNashSolver};
use cnash_game::games;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    for bench in games::paper_benchmarks() {
        let game = &bench.game;
        let iterations = bench.paper_iterations / 5;
        let cfg = CNashConfig::paper(12).with_iterations(iterations);
        let solver = CNashSolver::new(game, cfg, 0).expect("maps");

        let opts = SaOptions {
            iterations,
            schedule: cfg.schedule,
            seed: 1,
            target_energy: Some(cfg.gap_tolerance),
            record_trace: true,
            record_hits: false,
        };
        let mut rng = StdRng::seed_from_u64(1 ^ 0x5EED_0101);
        let init = GridStrategyPair::random(game.row_actions(), game.col_actions(), 12, &mut rng)
            .expect("valid");
        let run = simulated_annealing(
            init,
            |s| solver.evaluate(s),
            |s, rng| s.neighbour(rng),
            &opts,
        );

        println!(
            "{} — measured objective over {} iterations (final {:.4}):",
            game.name(),
            iterations,
            run.final_energy
        );
        plot(&run.trace, 12, 64);
        match run.first_hit {
            Some(k) => println!("first zero-gap detection at iteration {k}\n"),
            None => println!("no zero-gap detection this run\n"),
        }
    }
}

/// Minimal ASCII strip chart: `rows` levels, `cols` time buckets (mean
/// per bucket).
fn plot(trace: &[f64], rows: usize, cols: usize) {
    if trace.is_empty() {
        return;
    }
    let bucket = trace.len().div_ceil(cols);
    let means: Vec<f64> = trace
        .chunks(bucket)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let max = means.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    let min = means.iter().copied().fold(f64::MAX, f64::min).min(0.0);
    for level in (0..rows).rev() {
        let lo = min + (max - min) * level as f64 / rows as f64;
        let line: String = means
            .iter()
            .map(|&m| if m >= lo { '#' } else { ' ' })
            .collect();
        println!("  {lo:>7.3} |{line}");
    }
    println!("          +{}", "-".repeat(means.len()));
}
