//! Service connection-scale harness: thousands of concurrent pipelined
//! connections against a warm instance cache.
//!
//! `cargo run --release -p cnash-bench --bin service_load -- \
//!      [--conns N] [--per-conn K] [--quick] [--seed S] \
//!      [--addr HOST:PORT] [--out PATH]`
//!
//! Where `service_bench` measures per-request solve latency on one
//! connection, this harness measures the **reactor**: it opens
//! `--conns` connections (default 1000; `--quick` drops to 200 for CI
//! smoke runs), pipelines `--per-conn` identical warm-cache solve
//! requests down each, and drives them all from a single nonblocking
//! event loop — the same `Poller`/`LineFramer` machinery the daemon
//! itself runs on. Every response is matched to its request by the
//! service's request-ordered streaming contract, and the
//! request-written → response-framed latency goes into a
//! `cnash-telemetry` histogram.
//!
//! The cache is warmed with one cold solve before the clock starts, so
//! the measured numbers are connection-layer + scheduler + cache-hit
//! execution — no programming passes.
//!
//! Emits `BENCH_service_load.json` with sustained req/s and
//! p50/p90/p99/p999 latency. Exit status doubles as the CI gate:
//!
//! * exit 2 — usage error, or the harness could not set up (daemon,
//!   connect, warm-up),
//! * exit 1 — dropped responses: a connection died or the run stalled
//!   before every pipelined request was answered,
//! * exit 0 — every request answered; measurements recorded.

use cnash_bench::client::ServiceConn;
use cnash_bench::{usage_lines, Cli};
use cnash_core::report::render_table;
use cnash_runtime::spec::{ConfigSpec, GameSpec, JobSpec, SolverSpec};
use cnash_runtime::Json;
use cnash_service::framing::{FramedLine, LineFramer};
use cnash_service::reactor::{PollEvent, Poller};
use cnash_service::{serve, ServiceConfig, ServiceHandle};
use cnash_telemetry::Histogram;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

const FLAGS: &[&str] = &[
    "--conns",
    "--per-conn",
    "--quick",
    "--seed",
    "--addr",
    "--out",
    "--help",
];

/// A run with no forward progress for this long is declared stalled and
/// its unanswered requests counted as dropped.
const STALL_TIMEOUT: Duration = Duration::from_secs(60);
/// Connections opened per connect burst (the listener backlog is
/// finite; the reactor drains it between bursts).
const CONNECT_BURST: usize = 100;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(2);
}

/// The warm-cache job every connection pipelines: small enough that the
/// daemon, not the solver, dominates (4×4 random game, one short run).
fn solve_request(id: usize, seed: u64) -> String {
    let job = JobSpec {
        game: GameSpec::Random {
            rows: 4,
            cols: 4,
            max_payoff: 3,
            seed,
        },
        solver: SolverSpec::CNash {
            config: ConfigSpec::paper(12).with_iterations(150),
            hardware_seed: 0,
        },
        runs: 1,
        base_seed: seed,
        early_stop: None,
        label: Some("service-load-4x4".into()),
    };
    Json::obj([
        ("op", Json::str("solve")),
        ("id", Json::num(id as f64)),
        ("job", job.to_json()),
        ("ground_truth", Json::str("skip")),
    ])
    .compact()
}

/// One load connection's state machine: a pre-serialised pipeline of
/// requests on the way out, a line framer on the way back.
struct LoadConn {
    stream: TcpStream,
    framer: LineFramer,
    /// Bytes of the shared request block written so far.
    written: usize,
    /// Send timestamps, filled as `written` crosses request boundaries.
    sent_at: Vec<Instant>,
    /// Responses received (also the index of the next expected one).
    received: usize,
    dead: bool,
}

impl LoadConn {
    fn done(&self, per_conn: usize) -> bool {
        self.dead || self.received == per_conn
    }
}

fn main() {
    let cli = Cli::parse_for(FLAGS);
    if cli.help {
        println!("usage: service_load [flags]");
        print!("{}", usage_lines(Some(FLAGS)));
        println!("exit codes: 0 = all responses received, 1 = dropped responses, 2 = usage/setup");
        return;
    }
    // `--quick` is the CI smoke scale; explicit --conns/--per-conn win.
    let conns = if cli.quick && cli.conns == 1000 {
        200
    } else {
        cli.conns
    };
    let per_conn = if cli.quick && cli.per_conn == 8 {
        4
    } else {
        cli.per_conn
    };

    // In-process daemon unless --addr points at an external one.
    let mut daemon: Option<ServiceHandle> = None;
    let addr: SocketAddr = match &cli.addr {
        Some(addr) => addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .unwrap_or_else(|| fail(&format!("cannot resolve {addr}"))),
        None => {
            let handle = serve(ServiceConfig {
                max_connections: conns + 16,
                ..ServiceConfig::default()
            })
            .unwrap_or_else(|e| fail(&format!("cannot start in-process daemon: {e}")));
            let addr = handle.addr();
            daemon = Some(handle);
            addr
        }
    };

    // Warm the cache so the load phase is pure cache-hit traffic.
    let request = solve_request(0, cli.seed);
    {
        let mut warm = ServiceConn::connect(addr)
            .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
        let response = warm
            .round_trip(&request)
            .unwrap_or_else(|e| fail(&format!("warm-up solve failed: {e}")));
        let doc = Json::parse(&response)
            .unwrap_or_else(|e| fail(&format!("unparseable warm-up response: {e}")));
        if !doc.get("ok").and_then(Json::as_bool).unwrap_or(false) {
            fail(&format!("warm-up solve rejected: {response}"));
        }
    }

    // Every connection pipelines the same byte block; per-request send
    // times are recovered from the block's prefix boundaries.
    let mut block: Vec<u8> = Vec::new();
    let mut boundaries: Vec<usize> = Vec::with_capacity(per_conn);
    for k in 0..per_conn {
        block.extend_from_slice(solve_request(k + 1, cli.seed).as_bytes());
        block.push(b'\n');
        boundaries.push(block.len());
    }

    eprintln!("opening {conns} connections ({per_conn} pipelined requests each)...");
    let mut poller = Poller::new().unwrap_or_else(|e| fail(&format!("poller: {e}")));
    let mut pool: Vec<LoadConn> = Vec::with_capacity(conns);
    for batch in (0..conns).collect::<Vec<_>>().chunks(CONNECT_BURST) {
        for &k in batch {
            let stream = TcpStream::connect(addr)
                .unwrap_or_else(|e| fail(&format!("connect {k}/{conns} failed: {e}")));
            stream
                .set_nonblocking(true)
                .unwrap_or_else(|e| fail(&format!("set_nonblocking: {e}")));
            let _ = stream.set_nodelay(true);
            poller
                .register(stream.as_raw_fd(), k as u64, true, true)
                .unwrap_or_else(|e| fail(&format!("register: {e}")));
            pool.push(LoadConn {
                stream,
                framer: LineFramer::new(1 << 20),
                written: 0,
                sent_at: Vec::with_capacity(per_conn),
                received: 0,
                dead: false,
            });
        }
        // Let the daemon drain its accept backlog before the next burst.
        std::thread::sleep(Duration::from_millis(2));
    }

    let total_requests = conns * per_conn;
    let latency = Histogram::new();
    let mut completed = 0usize;
    let mut remaining = conns;
    let start = Instant::now();
    let mut last_progress = start;
    let mut last_report = start;
    let mut events: Vec<PollEvent> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 16 * 1024];

    while remaining > 0 {
        if last_progress.elapsed() > STALL_TIMEOUT {
            eprintln!(
                "stalled: no progress for {}s with {remaining} connections outstanding",
                STALL_TIMEOUT.as_secs()
            );
            break;
        }
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap_or_else(|e| fail(&format!("poller wait: {e}")));
        for &ev in &events {
            let conn = &mut pool[ev.token as usize];
            if conn.done(per_conn) {
                continue;
            }
            let mut progressed = false;
            if ev.writable && conn.written < block.len() {
                loop {
                    match (&conn.stream).write(&block[conn.written..]) {
                        Ok(0) => {
                            conn.dead = true;
                            break;
                        }
                        Ok(n) => {
                            let before = conn.written;
                            conn.written += n;
                            progressed = true;
                            // Timestamp every request this write completed.
                            let now = Instant::now();
                            while conn.sent_at.len() < per_conn
                                && boundaries[conn.sent_at.len()] > before
                                && boundaries[conn.sent_at.len()] <= conn.written
                            {
                                conn.sent_at.push(now);
                            }
                            if conn.written == block.len() {
                                break;
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
            }
            if ev.readable && !conn.dead {
                'read: loop {
                    match (&conn.stream).read(&mut chunk) {
                        Ok(0) => {
                            if conn.received < per_conn {
                                conn.dead = true;
                            }
                            break;
                        }
                        Ok(n) => {
                            conn.framer.extend(&chunk[..n]);
                            let now = Instant::now();
                            while let Some(line) = conn.framer.next_line() {
                                let FramedLine::Line(_) = line else {
                                    conn.dead = true;
                                    break 'read;
                                };
                                if conn.received >= conn.sent_at.len() {
                                    conn.dead = true; // response without a request
                                    break 'read;
                                }
                                let ns = now
                                    .duration_since(conn.sent_at[conn.received])
                                    .as_nanos()
                                    .min(u128::from(u64::MAX))
                                    as u64;
                                latency.record(ns);
                                conn.received += 1;
                                completed += 1;
                                progressed = true;
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
            }
            if progressed {
                last_progress = Instant::now();
            }
            if conn.done(per_conn) {
                let _ = poller.deregister(conn.stream.as_raw_fd());
                remaining -= 1;
            } else if conn.written == block.len() {
                // Fully sent: drop write interest, keep draining reads.
                let _ = poller.reregister(conn.stream.as_raw_fd(), ev.token, true, false);
            }
        }
        if last_report.elapsed() > Duration::from_secs(2) {
            eprintln!(
                "  {completed}/{total_requests} responses, {remaining} connections outstanding"
            );
            last_report = Instant::now();
        }
    }
    let elapsed = start.elapsed();

    if let Some(handle) = daemon {
        handle.stop();
    }

    let dropped = total_requests - completed;
    let snapshot = latency.snapshot();
    let quantile_ms = |q: f64| snapshot.quantile(q) as f64 / 1e6;
    let req_per_s = completed as f64 / elapsed.as_secs_f64();
    let rows = vec![vec![
        format!("{conns}x{per_conn}"),
        format!("{req_per_s:.0}"),
        format!("{:.2}", quantile_ms(0.50)),
        format!("{:.2}", quantile_ms(0.90)),
        format!("{:.2}", quantile_ms(0.99)),
        format!("{:.2}", quantile_ms(0.999)),
        format!("{dropped}"),
    ]];
    println!(
        "{}",
        render_table(
            "Service load: pipelined warm-cache solves across concurrent connections",
            &[
                "conns x reqs",
                "req/s",
                "p50 ms",
                "p90 ms",
                "p99 ms",
                "p999 ms",
                "dropped"
            ],
            &rows,
        )
    );

    let doc = Json::obj([
        ("bench", Json::str("service_load")),
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(if cli.quick { "quick" } else { "full" })),
        ("seed", Json::num(cli.seed as f64)),
        (
            "config",
            Json::obj([
                ("conns", Json::num(conns as f64)),
                ("per_conn", Json::num(per_conn as f64)),
                ("total_requests", Json::num(total_requests as f64)),
            ]),
        ),
        (
            "summary",
            Json::obj([
                ("elapsed_s", Json::Num(elapsed.as_secs_f64())),
                ("completed", Json::num(completed as f64)),
                ("dropped", Json::num(dropped as f64)),
                ("req_per_s", Json::Num(req_per_s)),
                ("p50_ms", Json::Num(quantile_ms(0.50))),
                ("p90_ms", Json::Num(quantile_ms(0.90))),
                ("p99_ms", Json::Num(quantile_ms(0.99))),
                ("p999_ms", Json::Num(quantile_ms(0.999))),
            ]),
        ),
    ]);
    let out_path = cli.out.as_deref().unwrap_or("BENCH_service_load.json");
    if let Err(e) = std::fs::write(out_path, doc.pretty()) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("wrote {out_path}");

    if dropped > 0 {
        eprintln!("FAIL: {dropped}/{total_requests} responses dropped");
        std::process::exit(1);
    }
    println!(
        "{total_requests} responses across {conns} connections in {:.1}s ({req_per_s:.0} req/s), 0 dropped",
        elapsed.as_secs_f64()
    );
}
