//! Reproduction binaries and the differential-verification harness.
//!
//! This crate carries two kinds of executables: the **paper-artefact
//! binaries** (Table 1, Figs. 7–10, `batch`, `perf`, the service
//! clients) and the **`diffcheck` differential oracle fuzzer** — the
//! repository's strongest evidence that the analog C-Nash pipeline
//! finds true Nash equilibria. Paper-vs-measured numbers for every
//! artefact are recorded in `EXPERIMENTS.md` at the repository root;
//! the full correctness chain is documented in `docs/VERIFICATION.md`.
//!
//! # Differential-fuzzing methodology ([`diffcheck`])
//!
//! The harness sweeps a **family × size × seed grid** of structured
//! games (`cnash_game::families` — six GAMUT-style seeded generators —
//! plus a uniform-random baseline column) and checks two layers per
//! grid point, fanned across the `cnash-runtime` worker pool with
//! grid-order folding, so summaries are bit-identical at any thread
//! count:
//!
//! 1. **Oracle self-consistency.** The two exact oracles share no code
//!    (support enumeration, Lemke–Howson). Per point, enumeration must
//!    find at least one equilibrium (Nash's theorem), and every
//!    Lemke–Howson solution must certificate-verify *and* appear in
//!    the enumerated set. Any violation is an `oracle_disagreement` —
//!    a fatal finding against the ground truth itself.
//! 2. **Solver soundness.** Every hardware-solver run that *claims* a
//!    hit is re-verified through an independently computed
//!    `cnash_core::certificate::Certificate`.
//!
//! ## Mismatch taxonomy
//!
//! * **`false_equilibrium`** — a claimed hit the certificate rejects.
//!   The one class that is always a bug; it fails the sweep and is
//!   minimized into a replayable counterexample jobs file.
//! * **missed but allowed** — a run that found nothing. The solvers
//!   are stochastic; misses are counted, never fatal.
//! * **unlisted-valid** — a certificate-valid hit absent from the
//!   enumerated set. Possible on degenerate games whose equilibria
//!   form *continua* a finite enumeration can only sample; each such
//!   hit is matched **structurally** against the oracle's continuum
//!   representatives (support-pair classes,
//!   `cnash_game::SupportClass`) and reported under its class label.
//!   A hit no class explains is counted `unlisted_unclassified` and
//!   gated to zero on the quick grid in CI.
//!
//! # Shared CLI
//!
//! Every binary accepts a subset of one flag table (unsupported flags
//! are rejected, never ignored):
//!
//! * `--runs N` — independent runs per (solver, game) pair (default 500),
//! * `--full` — the paper's full 5000 runs with the paper's iteration
//!   budgets (slow!),
//! * `--seed S` — base RNG seed (default 0),
//! * `--threads T` — worker threads for the parallel runtime
//!   (default 0 = all cores),
//! * `--jobs-file PATH` — run a JSON jobs file through the portfolio
//!   runtime (the `batch` binary) or replay a counterexample
//!   (`diffcheck`),
//! * `--help` — binary-specific usage (for `diffcheck`: including its
//!   exit-code contract).

pub mod client;
pub mod diffcheck;

use cnash_core::baselines::DWaveNashSolver;
use cnash_core::{CNashConfig, CNashSolver, GameReport, NashSolver};
use cnash_game::games::{paper_benchmarks, PaperBenchmark};
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::Equilibrium;
use cnash_qubo::dwave::DWaveModel;
use cnash_runtime::BatchRunner;

/// One flag of the shared reproduction CLI.
struct FlagSpec {
    name: &'static str,
    /// Placeholder of the flag's value (`None` = boolean switch).
    value: Option<&'static str>,
    help: &'static str,
}

/// The single flag table every reproduction binary shares.
const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--runs",
        value: Some("N"),
        help: "independent runs per (solver, game) pair [500]",
    },
    FlagSpec {
        name: "--seed",
        value: Some("S"),
        help: "base RNG seed [0]",
    },
    FlagSpec {
        name: "--full",
        value: None,
        help: "the paper's full 5000-run budgets (slow!)",
    },
    FlagSpec {
        name: "--threads",
        value: Some("T"),
        help: "worker threads for the parallel runtime [0 = all cores]",
    },
    FlagSpec {
        name: "--jobs-file",
        value: Some("PATH"),
        help: "JSON jobs file to run through the portfolio runtime",
    },
    FlagSpec {
        name: "--quick",
        value: None,
        help: "reduced measurement grid for CI smoke runs (perf binary)",
    },
    FlagSpec {
        name: "--out",
        value: Some("PATH"),
        help: "output path for machine-readable BENCH_*.json artefacts",
    },
    FlagSpec {
        name: "--addr",
        value: Some("HOST:PORT"),
        help: "solver-service address (service_client)",
    },
    FlagSpec {
        name: "--requests",
        value: Some("PATH"),
        help: "JSON-lines request file to stream to the service",
    },
    FlagSpec {
        name: "--conns",
        value: Some("N"),
        help: "concurrent connections to open (service_load) [1000]",
    },
    FlagSpec {
        name: "--per-conn",
        value: Some("K"),
        help: "pipelined requests per connection (service_load) [8]",
    },
    FlagSpec {
        name: "--golden",
        value: None,
        help: "strip wall-clock fields from responses (golden-file diffing)",
    },
    FlagSpec {
        name: "--stats-json",
        value: Some("PATH"),
        help: "after the replay, fetch the daemon's stats and write them to PATH",
    },
    FlagSpec {
        name: "--serial",
        value: None,
        help: "await each response before sending the next request",
    },
    FlagSpec {
        name: "--store",
        value: Some("PATH"),
        help: "persistent solution-store log (presolve, store, store_bench)",
    },
    FlagSpec {
        name: "--emit-requests",
        value: Some("PATH"),
        help: "write the swept jobs as service request lines (presolve)",
    },
    FlagSpec {
        name: "--corrupt",
        value: None,
        help: "test hook: corrupt solver answers to exercise the diffcheck failure path",
    },
    FlagSpec {
        name: "--help",
        value: None,
        help: "print the binary's usage (and exit-code contract) and exit",
    },
];

/// Parsed command-line options of a reproduction binary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cli {
    /// Runs per (solver, game) pair.
    pub runs: usize,
    /// Use the paper's full budgets.
    pub full: bool,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
    /// Optional JSON jobs file.
    pub jobs_file: Option<String>,
    /// Reduced measurement grid (CI smoke runs).
    pub quick: bool,
    /// Output path for machine-readable BENCH artefacts.
    pub out: Option<String>,
    /// Solver-service address (service binaries).
    pub addr: Option<String>,
    /// JSON-lines request file for the service client.
    pub requests: Option<String>,
    /// Concurrent connections to open (service_load).
    pub conns: usize,
    /// Pipelined requests per connection (service_load).
    pub per_conn: usize,
    /// Strip wall-clock fields from service responses.
    pub golden: bool,
    /// Write the daemon's post-replay stats response to this path.
    pub stats_json: Option<String>,
    /// Await each service response before sending the next request.
    pub serial: bool,
    /// Persistent solution-store log path (store binaries).
    pub store: Option<String>,
    /// Write the swept jobs as service request lines (presolve).
    pub emit_requests: Option<String>,
    /// Corrupt solver answers (diffcheck failure-path test hook).
    pub corrupt: bool,
    /// Print usage and exit (binaries print their own detail text).
    pub help: bool,
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_supporting(None)
    }

    /// Parses `std::env::args` against a restricted flag subset: flags
    /// outside `supported` abort with a usage message listing only the
    /// binary's own flags — a binary never silently ignores an option
    /// that does not apply to it.
    pub fn parse_for(supported: &[&str]) -> Self {
        Self::parse_supporting(Some(supported))
    }

    fn parse_supporting(supported: Option<&[&str]>) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_from_supporting(&args, supported) {
            Ok(cli) => cli,
            Err(msg) => usage(&msg, supported),
        }
    }

    /// Parses an explicit argument list (all flags allowed).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid or unknown flag.
    pub fn parse_from(args: &[String]) -> Result<Self, String> {
        Self::parse_from_supporting(args, None)
    }

    /// Parses an explicit argument list against a flag subset
    /// (`None` = the full table).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid, unknown or
    /// unsupported flag.
    pub fn parse_from_supporting(
        args: &[String],
        supported: Option<&[&str]>,
    ) -> Result<Self, String> {
        let mut cli = Cli {
            runs: 500,
            conns: 1000,
            per_conn: 8,
            ..Cli::default()
        };
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            let spec = FLAGS
                .iter()
                .find(|f| f.name == arg)
                .ok_or_else(|| format!("unknown flag {arg}"))?;
            if let Some(subset) = supported {
                if !subset.contains(&arg) {
                    return Err(format!("flag {arg} is not supported by this binary"));
                }
            }
            let value = if spec.value.is_some() {
                i += 1;
                Some(
                    args.get(i)
                        .ok_or_else(|| format!("{arg} needs a value"))?
                        .as_str(),
                )
            } else {
                None
            };
            let parsed = |v: &str| -> Result<u64, String> {
                v.parse::<u64>()
                    .map_err(|_| format!("{arg} needs a non-negative integer, got `{v}`"))
            };
            match arg {
                "--runs" => {
                    cli.runs = parsed(value.expect("has value"))? as usize;
                    if cli.runs == 0 {
                        return Err("--runs needs a positive integer".into());
                    }
                }
                "--seed" => cli.seed = parsed(value.expect("has value"))?,
                "--conns" => {
                    cli.conns = parsed(value.expect("has value"))? as usize;
                    if cli.conns == 0 {
                        return Err("--conns needs a positive integer".into());
                    }
                }
                "--per-conn" => {
                    cli.per_conn = parsed(value.expect("has value"))? as usize;
                    if cli.per_conn == 0 {
                        return Err("--per-conn needs a positive integer".into());
                    }
                }
                "--threads" => cli.threads = parsed(value.expect("has value"))? as usize,
                "--full" => cli.full = true,
                "--quick" => cli.quick = true,
                "--golden" => cli.golden = true,
                "--serial" => cli.serial = true,
                "--corrupt" => cli.corrupt = true,
                "--help" => cli.help = true,
                "--jobs-file" => cli.jobs_file = Some(value.expect("has value").to_string()),
                "--out" => cli.out = Some(value.expect("has value").to_string()),
                "--addr" => cli.addr = Some(value.expect("has value").to_string()),
                "--requests" => cli.requests = Some(value.expect("has value").to_string()),
                "--stats-json" => cli.stats_json = Some(value.expect("has value").to_string()),
                "--store" => cli.store = Some(value.expect("has value").to_string()),
                "--emit-requests" => {
                    cli.emit_requests = Some(value.expect("has value").to_string());
                }
                _ => unreachable!("flag table covers every match arm"),
            }
            i += 1;
        }
        if cli.full {
            cli.runs = 5000;
        }
        Ok(cli)
    }

    /// SA iteration budget for a benchmark: the paper's figure when
    /// `--full`, otherwise a 5× reduced budget for turnaround.
    pub fn iterations(&self, bench: &PaperBenchmark) -> usize {
        if self.full {
            bench.paper_iterations
        } else {
            (bench.paper_iterations / 5).max(1000)
        }
    }

    /// The batch runner these options describe.
    pub fn runner(&self) -> BatchRunner {
        BatchRunner::new(self.runs, self.seed).threads(self.threads)
    }
}

/// The flag-table help text for a binary's flag subset (`None` = every
/// flag) — what `usage` prints, exposed so binaries can build their own
/// `--help` output around it.
pub fn usage_lines(supported: Option<&[&str]>) -> String {
    let mut out = String::new();
    for f in FLAGS {
        if let Some(subset) = supported {
            if !subset.contains(&f.name) {
                continue;
            }
        }
        match f.value {
            Some(v) => out.push_str(&format!("  {} {:<9} {}\n", f.name, v, f.help)),
            None => out.push_str(&format!("  {:<18} {}\n", f.name, f.help)),
        }
    }
    out
}

fn usage(msg: &str, supported: Option<&[&str]>) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [flags]");
    eprint!("{}", usage_lines(supported));
    std::process::exit(2);
}

/// One benchmark's evaluation bundle: the game, its ground truth and the
/// per-solver reports (C-Nash, D-Wave 2000Q6, Advantage 4.1 — same order
/// as the paper's tables).
pub struct BenchmarkEvaluation {
    /// The benchmark definition.
    pub bench: PaperBenchmark,
    /// Ground-truth equilibria (support enumeration).
    pub ground_truth: Vec<Equilibrium>,
    /// Reports in solver order [C-Nash, 2000Q6, Advantage 4.1].
    pub reports: Vec<GameReport>,
}

/// Runs the full three-solver × three-game evaluation used by Table 1 and
/// Figs. 8–10, fanned across the parallel runtime (`--threads`).
///
/// The aggregates are bit-identical at any thread count (see
/// `cnash_runtime`'s determinism contract), so `--threads` is purely a
/// wall-clock knob.
///
/// # Panics
///
/// Panics if a benchmark game fails to map onto the hardware (cannot
/// happen for the built-in benchmarks).
pub fn evaluate_paper_benchmarks(cli: &Cli) -> Vec<BenchmarkEvaluation> {
    let runner = cli.runner();
    paper_benchmarks()
        .into_iter()
        .map(|bench| {
            let game = bench.game.clone();
            let ground_truth = enumerate_equilibria(&game, 1e-9);
            let cfg = CNashConfig::paper(12).with_iterations(cli.iterations(&bench));
            let cnash =
                CNashSolver::new(&game, cfg, cli.seed).expect("benchmark maps onto hardware");
            let q2000 =
                DWaveNashSolver::new(&game, DWaveModel::dwave_2000q(), 1).expect("integer payoffs");
            let advantage = DWaveNashSolver::new(&game, DWaveModel::advantage_4_1(), 1)
                .expect("integer payoffs");
            let reports = [&cnash as &dyn NashSolver, &q2000, &advantage]
                .into_iter()
                .map(|s| runner.evaluate(s, &ground_truth).report)
                .collect();
            BenchmarkEvaluation {
                bench,
                ground_truth,
                reports,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let cli = Cli::parse_from(&args(&[
            "--runs",
            "12",
            "--seed",
            "9",
            "--threads",
            "4",
            "--jobs-file",
            "jobs.json",
            "--quick",
            "--out",
            "BENCH_sa_hotpath.json",
            "--addr",
            "127.0.0.1:7401",
            "--requests",
            "reqs.jsonl",
            "--conns",
            "64",
            "--per-conn",
            "3",
            "--golden",
            "--stats-json",
            "stats.json",
            "--serial",
            "--corrupt",
            "--store",
            "store.log",
            "--emit-requests",
            "presolved.jsonl",
        ]))
        .unwrap();
        assert_eq!(
            cli,
            Cli {
                runs: 12,
                full: false,
                seed: 9,
                threads: 4,
                jobs_file: Some("jobs.json".into()),
                quick: true,
                out: Some("BENCH_sa_hotpath.json".into()),
                addr: Some("127.0.0.1:7401".into()),
                requests: Some("reqs.jsonl".into()),
                conns: 64,
                per_conn: 3,
                golden: true,
                stats_json: Some("stats.json".into()),
                serial: true,
                corrupt: true,
                store: Some("store.log".into()),
                emit_requests: Some("presolved.jsonl".into()),
                help: false,
            }
        );
    }

    #[test]
    fn help_flag_parses_and_is_subset_gated() {
        let cli = Cli::parse_from(&args(&["--help"])).unwrap();
        assert!(cli.help);
        let cli =
            Cli::parse_from_supporting(&args(&["--help"]), Some(&["--help", "--quick"])).unwrap();
        assert!(cli.help);
        assert!(Cli::parse_from_supporting(&args(&["--help"]), Some(&["--quick"])).is_err());
        // The usage text respects the subset filter.
        let lines = usage_lines(Some(&["--quick", "--help"]));
        assert!(lines.contains("--quick") && lines.contains("--help"));
        assert!(!lines.contains("--runs"));
    }

    #[test]
    fn restricted_binaries_reject_flags_outside_their_subset() {
        let subset: &[&str] = &["--jobs-file", "--threads"];
        let ok = Cli::parse_from_supporting(
            &args(&["--jobs-file", "jobs.json", "--threads", "2"]),
            Some(subset),
        )
        .unwrap();
        assert_eq!(ok.jobs_file.as_deref(), Some("jobs.json"));
        // A flag that exists in the global table but not in this
        // binary's subset is an error, never silently ignored.
        let err = Cli::parse_from_supporting(&args(&["--runs", "5"]), Some(subset)).unwrap_err();
        assert!(err.contains("--runs"), "{err}");
        assert!(err.contains("not supported"), "{err}");
        // Truly unknown flags keep their own message.
        let err = Cli::parse_from_supporting(&args(&["--warp"]), Some(subset)).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn full_overrides_runs() {
        let cli = Cli::parse_from(&args(&["--runs", "7", "--full"])).unwrap();
        assert!(cli.full);
        assert_eq!(cli.runs, 5000);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse_from(&args(&["--bogus"])).is_err());
        assert!(Cli::parse_from(&args(&["--runs"])).is_err());
        assert!(Cli::parse_from(&args(&["--runs", "x"])).is_err());
        assert!(Cli::parse_from(&args(&["--runs", "0"])).is_err());
        assert!(Cli::parse_from(&args(&["--seed", "-3"])).is_err());
    }

    #[test]
    fn defaults() {
        let cli = Cli::parse_from(&[]).unwrap();
        assert_eq!(cli.runs, 500);
        assert_eq!(cli.threads, 0);
        assert_eq!(cli.jobs_file, None);
        assert_eq!(cli.conns, 1000);
        assert_eq!(cli.per_conn, 8);
        assert_eq!(cli.store, None);
        assert_eq!(cli.emit_requests, None);
    }

    #[test]
    fn iterations_scaling() {
        let bench = &paper_benchmarks()[0];
        let quick = Cli::parse_from(&args(&["--runs", "10"])).unwrap();
        let full = Cli::parse_from(&args(&["--runs", "10", "--full"])).unwrap();
        assert_eq!(quick.iterations(bench), 2000);
        assert_eq!(full.iterations(bench), 10_000);
    }

    #[test]
    fn evaluation_produces_three_reports_per_game() {
        let cli = Cli {
            runs: 3,
            seed: 1,
            threads: 2,
            ..Cli::default()
        };
        let evals = evaluate_paper_benchmarks(&cli);
        assert_eq!(evals.len(), 3);
        for e in &evals {
            assert_eq!(e.reports.len(), 3);
            assert_eq!(e.reports[0].solver, "C-Nash");
            assert!(!e.ground_truth.is_empty());
        }
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        use cnash_core::ExperimentRunner;
        let game = cnash_game::games::battle_of_the_sexes();
        let truth = enumerate_equilibria(&game, 1e-9);
        let solver =
            CNashSolver::new(&game, CNashConfig::paper(12).with_iterations(2000), 5).expect("maps");
        let sequential = ExperimentRunner::new(8, 5).evaluate(&solver, &truth);
        let cli = Cli {
            runs: 8,
            seed: 5,
            threads: 4,
            ..Cli::default()
        };
        let parallel = cli.runner().evaluate(&solver, &truth).report;
        assert_eq!(parallel, sequential);
    }
}
