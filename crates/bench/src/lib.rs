//! Shared plumbing for the reproduction binaries.
//!
//! Every binary accepts:
//!
//! * `--runs N` — independent runs per (solver, game) pair (default 500),
//! * `--full` — the paper's full 5000 runs with the paper's iteration
//!   budgets (slow!),
//! * `--seed S` — base RNG seed (default 0).
//!
//! Paper-vs-measured numbers for every artefact are recorded in
//! `EXPERIMENTS.md` at the repository root.

use cnash_core::baselines::DWaveNashSolver;
use cnash_core::{CNashConfig, CNashSolver, ExperimentRunner, GameReport, NashSolver};
use cnash_game::games::{paper_benchmarks, PaperBenchmark};
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::Equilibrium;
use cnash_qubo::dwave::DWaveModel;

/// Parsed command-line options of a reproduction binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cli {
    /// Runs per (solver, game) pair.
    pub runs: usize,
    /// Use the paper's full budgets.
    pub full: bool,
    /// Base seed.
    pub seed: u64,
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        let mut cli = Cli {
            runs: 500,
            full: false,
            seed: 0,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--runs" => {
                    i += 1;
                    cli.runs = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--runs needs a positive integer"));
                }
                "--seed" => {
                    i += 1;
                    cli.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--full" => cli.full = true,
                other => usage(&format!("unknown flag {other}")),
            }
            i += 1;
        }
        if cli.full {
            cli.runs = 5000;
        }
        cli
    }

    /// SA iteration budget for a benchmark: the paper's figure when
    /// `--full`, otherwise a 5× reduced budget for turnaround.
    pub fn iterations(&self, bench: &PaperBenchmark) -> usize {
        if self.full {
            bench.paper_iterations
        } else {
            (bench.paper_iterations / 5).max(1000)
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [--runs N] [--seed S] [--full]");
    std::process::exit(2);
}

/// One benchmark's evaluation bundle: the game, its ground truth and the
/// per-solver reports (C-Nash, D-Wave 2000Q6, Advantage 4.1 — same order
/// as the paper's tables).
pub struct BenchmarkEvaluation {
    /// The benchmark definition.
    pub bench: PaperBenchmark,
    /// Ground-truth equilibria (support enumeration).
    pub ground_truth: Vec<Equilibrium>,
    /// Reports in solver order [C-Nash, 2000Q6, Advantage 4.1].
    pub reports: Vec<GameReport>,
}

/// Runs the full three-solver × three-game evaluation used by Table 1 and
/// Figs. 8–10.
///
/// # Panics
///
/// Panics if a benchmark game fails to map onto the hardware (cannot
/// happen for the built-in benchmarks).
pub fn evaluate_paper_benchmarks(cli: &Cli) -> Vec<BenchmarkEvaluation> {
    let runner = ExperimentRunner::new(cli.runs, cli.seed);
    paper_benchmarks()
        .into_iter()
        .map(|bench| {
            let game = bench.game.clone();
            let ground_truth = enumerate_equilibria(&game, 1e-9);
            let cfg = CNashConfig::paper(12).with_iterations(cli.iterations(&bench));
            let cnash =
                CNashSolver::new(&game, cfg, cli.seed).expect("benchmark maps onto hardware");
            let q2000 = DWaveNashSolver::new(&game, DWaveModel::dwave_2000q(), 1)
                .expect("integer payoffs");
            let advantage = DWaveNashSolver::new(&game, DWaveModel::advantage_4_1(), 1)
                .expect("integer payoffs");
            let reports = [&cnash as &dyn NashSolver, &q2000, &advantage]
                .into_iter()
                .map(|s| runner.evaluate(s, &ground_truth))
                .collect();
            BenchmarkEvaluation {
                bench,
                ground_truth,
                reports,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_scaling() {
        let bench = &paper_benchmarks()[0];
        let quick = Cli {
            runs: 10,
            full: false,
            seed: 0,
        };
        let full = Cli {
            runs: 10,
            full: true,
            seed: 0,
        };
        assert_eq!(quick.iterations(bench), 2000);
        assert_eq!(full.iterations(bench), 10_000);
    }

    #[test]
    fn evaluation_produces_three_reports_per_game() {
        let cli = Cli {
            runs: 3,
            full: false,
            seed: 1,
        };
        let evals = evaluate_paper_benchmarks(&cli);
        assert_eq!(evals.len(), 3);
        for e in &evals {
            assert_eq!(e.reports.len(), 3);
            assert_eq!(e.reports[0].solver, "C-Nash");
            assert!(!e.ground_truth.is_empty());
        }
    }
}
