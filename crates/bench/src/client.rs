//! Client-side plumbing for the solver service's JSON-lines protocol.
//!
//! Shared by the `service_client` CLI, the `service_bench` harness and
//! the repository-root round-trip test: a thin line-framed connection
//! plus the golden-file normalisation (strip wall-clock fields,
//! re-serialise canonically).

use cnash_runtime::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A line-framed connection to the solver service.
pub struct ServiceConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceConn {
    /// Connects to the service.
    ///
    /// # Errors
    ///
    /// Propagates resolution/connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.trim().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response line (`None` on EOF).
    ///
    /// # Errors
    ///
    /// Propagates read errors.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Ok(None),
            _ => Ok(Some(line.trim_end().to_string())),
        }
    }

    /// Sends a request and awaits its response (serial mode).
    ///
    /// # Errors
    ///
    /// Errors if the connection drops before the response arrives.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection before responding",
            )
        })
    }

    /// Half-closes the write side so the service sees EOF and the
    /// remaining responses can be drained with [`ServiceConn::recv_line`].
    pub fn finish_writes(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }
}

/// Checks that a response line is what the protocol promises: a single
/// JSON *object*. The `service_client` binary calls this on every
/// received line and exits non-zero on the first violation — a corrupt
/// or truncated line must never be passed downstream as if it were a
/// report.
///
/// # Errors
///
/// Returns a description of why the line is not a protocol response.
pub fn validate_response(line: &str) -> Result<(), String> {
    match Json::parse(line) {
        Ok(Json::Obj(_)) => Ok(()),
        Ok(other) => Err(format!(
            "expected a JSON object, got {}",
            match other {
                Json::Arr(_) => "an array",
                Json::Str(_) => "a string",
                Json::Num(_) => "a number",
                Json::Bool(_) => "a boolean",
                _ => "null",
            }
        )),
        Err(e) => Err(e.to_string()),
    }
}

/// Normalises a response line for golden-file comparison: parses it,
/// strips the wall-clock fields (`wall_ms`/`program_ms`), the
/// toolchain-dependent `build` block of a ping, the
/// scheduling-dependent `scheduler` block of a stats response, and the
/// solution-store provenance — the `cache:"disk"` flag on a disk-served
/// solve and the `store` stats block, both of which depend on what a
/// daemon's store happened to hold, not on the request — then
/// re-serialises canonically (sorted keys, compact framing). A
/// store-less daemon's stream normalises to exactly what it did before
/// stores existed, and a disk hit normalises byte-identically to the
/// cold solve it replayed. Unparseable lines pass through untouched so
/// a diff still shows them (the `service_client` binary rejects them
/// via [`validate_response`] before ever getting here).
pub fn normalise_response(line: &str) -> String {
    match Json::parse(line) {
        Ok(mut doc) => {
            cnash_service::strip_timing(&mut doc);
            if let Json::Obj(map) = &mut doc {
                map.remove("build");
                map.remove("scheduler");
                map.remove("cache");
                map.remove("store");
            }
            doc.compact()
        }
        Err(_) => line.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_service::{serve, ServiceConfig};

    #[test]
    fn round_trips_against_a_live_service() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let mut conn = ServiceConn::connect(handle.addr()).unwrap();
        let pong = conn.round_trip(r#"{"op":"ping","id":1}"#).unwrap();
        assert!(pong.contains("\"pong\":true"));
        conn.finish_writes();
        assert_eq!(conn.recv_line().unwrap(), None, "EOF after half-close");
        handle.stop();
    }

    #[test]
    fn normalise_strips_wall_clock_and_canonicalises() {
        let raw = r#"{"wall_ms": 3.5, "ok": true, "program_ms": 1.0, "id": 2}"#;
        assert_eq!(normalise_response(raw), r#"{"id":2,"ok":true}"#);
        assert_eq!(normalise_response("garbage"), "garbage");
        // Toolchain- and scheduling-dependent blocks go too.
        let ping = r#"{"id":1,"ok":true,"pong":true,"build":{"version":"0.2.0"}}"#;
        assert_eq!(
            normalise_response(ping),
            r#"{"id":1,"ok":true,"pong":true}"#
        );
        let stats = r#"{"id":2,"ok":true,"scheduler":{"jobs_stolen":3},"shards":2}"#;
        assert_eq!(
            normalise_response(stats),
            r#"{"id":2,"ok":true,"shards":2}"#
        );
        // Store provenance goes too: a disk hit normalises to the cold
        // solve it replayed, and store-bearing stats match store-less.
        let disk_hit = r#"{"cache":"disk","id":3,"ok":true,"program_ms":0.0,"wall_ms":0.1}"#;
        assert_eq!(normalise_response(disk_hit), r#"{"id":3,"ok":true}"#);
        let stats = r#"{"id":4,"ok":true,"shards":2,"store":{"hits":7}}"#;
        assert_eq!(
            normalise_response(stats),
            r#"{"id":4,"ok":true,"shards":2}"#
        );
    }

    #[test]
    fn validate_rejects_non_protocol_lines() {
        assert!(validate_response(r#"{"id":1,"ok":true}"#).is_ok());
        // Truncated JSON (a dropped connection mid-line), non-objects
        // and plain garbage are all protocol violations.
        assert!(validate_response(r#"{"id":1,"ok":tr"#).is_err());
        assert!(validate_response("[1,2,3]").is_err());
        assert!(validate_response("42").is_err());
        assert!(validate_response("HTTP/1.1 400 Bad Request").is_err());
    }

    #[test]
    fn dropped_connection_surfaces_as_an_error_not_eof() {
        // A peer that vanishes mid-stream must yield a distinguishable
        // outcome from a clean EOF so the client can exit non-zero with
        // the right message. `round_trip` maps clean EOF to an error
        // too: no response is never success.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            // Accept and immediately drop the socket: the client's read
            // sees EOF before any response arrives.
            let _ = listener.accept().unwrap();
        });
        let mut conn = ServiceConn::connect(addr).unwrap();
        accept.join().unwrap();
        // Depending on timing the OS reports the vanished peer as a
        // clean EOF (mapped to UnexpectedEof) or a connection reset —
        // either way round_trip must be an error, never Ok.
        let err = conn.round_trip(r#"{"op":"ping"}"#).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error kind: {err:?}"
        );
    }
}
