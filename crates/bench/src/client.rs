//! Client-side plumbing for the solver service's JSON-lines protocol.
//!
//! Shared by the `service_client` CLI, the `service_bench` harness and
//! the repository-root round-trip test: a thin line-framed connection
//! plus the golden-file normalisation (strip wall-clock fields,
//! re-serialise canonically).

use cnash_runtime::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A line-framed connection to the solver service.
pub struct ServiceConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceConn {
    /// Connects to the service.
    ///
    /// # Errors
    ///
    /// Propagates resolution/connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.trim().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response line (`None` on EOF).
    ///
    /// # Errors
    ///
    /// Propagates read errors.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Ok(None),
            _ => Ok(Some(line.trim_end().to_string())),
        }
    }

    /// Sends a request and awaits its response (serial mode).
    ///
    /// # Errors
    ///
    /// Errors if the connection drops before the response arrives.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed the connection before responding",
            )
        })
    }

    /// Half-closes the write side so the service sees EOF and the
    /// remaining responses can be drained with [`ServiceConn::recv_line`].
    pub fn finish_writes(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }
}

/// Normalises a response line for golden-file comparison: parses it,
/// strips the wall-clock fields and re-serialises canonically
/// (sorted keys, compact framing). Unparseable lines pass through
/// untouched so a diff still shows them.
pub fn normalise_response(line: &str) -> String {
    match Json::parse(line) {
        Ok(mut doc) => {
            cnash_service::strip_timing(&mut doc);
            doc.compact()
        }
        Err(_) => line.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnash_service::{serve, ServiceConfig};

    #[test]
    fn round_trips_against_a_live_service() {
        let handle = serve(ServiceConfig::default()).unwrap();
        let mut conn = ServiceConn::connect(handle.addr()).unwrap();
        let pong = conn.round_trip(r#"{"op":"ping","id":1}"#).unwrap();
        assert!(pong.contains("\"pong\":true"));
        conn.finish_writes();
        assert_eq!(conn.recv_line().unwrap(), None, "EOF after half-close");
        handle.stop();
    }

    #[test]
    fn normalise_strips_wall_clock_and_canonicalises() {
        let raw = r#"{"wall_ms": 3.5, "ok": true, "program_ms": 1.0, "id": 2}"#;
        assert_eq!(normalise_response(raw), r#"{"id":2,"ok":true}"#);
        assert_eq!(normalise_response("garbage"), "garbage");
    }
}
