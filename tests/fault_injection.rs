//! Failure injection: dead and stuck-on cells in the crossbar, extreme
//! variability, and coarse ADCs. The architecture should degrade
//! gracefully, not catastrophically.

use cnash_core::{CNashConfig, CNashSolver, NashSolver};
use cnash_crossbar::{Crossbar, MappingSpec, QuantizedPayoffs};
use cnash_device::cell::CellParams;
use cnash_device::variability::VariabilityModel;
use cnash_game::games;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn bird_crossbar() -> Crossbar {
    let g = games::bird_game();
    let q = QuantizedPayoffs::from_integer_matrix(g.row_payoffs()).expect("integer");
    let spec = MappingSpec::new(12, q.max_element()).expect("valid");
    Crossbar::build(q, spec, CellParams::default(), VariabilityModel::none(), 0).expect("builds")
}

/// A handful of dead cells shifts reads by at most the lost unary units.
#[test]
fn dead_cells_cause_bounded_proportional_error() {
    let mut xbar = bird_crossbar();
    let p = vec![4u32, 4, 4];
    let q = vec![4u32, 4, 4];
    let clean = xbar.read_vmv(&p, &q).expect("read");

    let (rows, cols) = xbar.physical_size();
    let mut rng = StdRng::seed_from_u64(3);
    let kills = 10;
    for _ in 0..kills {
        let r = rng.random_range(0..rows);
        let c = rng.random_range(0..cols);
        xbar.inject_dead_cell(r, c);
    }
    xbar.rebuild_prefix();
    let faulty = xbar.read_vmv(&p, &q).expect("read");

    let unit = xbar.nominal_on_current();
    assert!(faulty <= clean + 1e-15);
    assert!(
        clean - faulty <= kills as f64 * unit + 1e-12,
        "lost more current than the dead cells carried"
    );
}

/// Stuck-on cells inflate reads by at most one unit each.
#[test]
fn stuck_on_cells_inflate_bounded() {
    let mut xbar = bird_crossbar();
    let p = vec![12u32, 0, 0];
    let q = vec![12u32, 0, 0];
    let clean = xbar.read_vmv(&p, &q).expect("read");
    xbar.inject_stuck_on_cell(0, 0);
    xbar.inject_stuck_on_cell(1, 1);
    xbar.rebuild_prefix();
    let faulty = xbar.read_vmv(&p, &q).expect("read");
    let unit = xbar.nominal_on_current();
    assert!(faulty >= clean - 1e-15);
    assert!(faulty - clean <= 2.0 * unit + 1e-12);
}

/// The solver still finds equilibria at 2x the paper's variability; at a
/// catastrophic 10x it may fail but must not panic or return invalid
/// strategies.
#[test]
fn solver_degrades_gracefully_under_extreme_variability() {
    let game = games::battle_of_the_sexes();

    let mut cfg = CNashConfig::paper(12).with_iterations(5000);
    cfg.crossbar.variability = VariabilityModel::paper().scaled(2.0);
    let solver = CNashSolver::new(&game, cfg, 4).expect("maps");
    let ok = (0..10).filter(|&s| solver.run(s).is_equilibrium).count();
    assert!(ok >= 5, "2x variability broke the solver: {ok}/10");

    cfg.crossbar.variability = VariabilityModel::paper().scaled(10.0);
    let harsh = CNashSolver::new(&game, cfg, 4).expect("maps");
    for seed in 0..5 {
        let out = harsh.run(seed);
        let (p, q) = out.into_pair().expect("profile is always returned");
        // Strategies remain valid simplex points regardless of noise.
        assert!((p.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((q.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

/// A 1-bit ADC is useless but must not crash; success collapses while the
/// returned strategies stay valid.
#[test]
fn one_bit_adc_is_safe_but_useless() {
    let game = games::bird_game();
    let mut cfg = CNashConfig::paper(12).with_iterations(2000);
    cfg.crossbar.adc_bits = Some(1);
    let solver = CNashSolver::new(&game, cfg, 0).expect("maps");
    for seed in 0..5 {
        let out = solver.run(seed);
        let (p, _) = out.into_pair().expect("profile");
        assert_eq!(p.len(), 3);
    }
}

/// WTA trees with absurd offsets misrank maxima but never return values
/// wildly outside the input range.
#[test]
fn wta_with_huge_offset_stays_bounded() {
    use cnash_wta::{WtaCell, WtaConfig, WtaTree};
    let cfg = WtaConfig {
        offset_rel: 0.2,
        ..WtaConfig::nominal()
    };
    let tree = WtaTree::build(8, &cfg, 9);
    let inputs: Vec<f64> = (1..=8).map(|k| k as f64).collect();
    let out = tree.eval(&inputs);
    assert!(out.value <= 8.0 * (1.0 + tree.error_bound()) + 1e-12);
    assert!(out.value >= 8.0 * (1.0 - tree.error_bound()) - 1e-12);
    // Explicit worst-case single cell.
    let cell = WtaCell::with_mismatch(cfg, 0.2 * cfg.corner.offset_scale());
    assert!((cell.compare(1.0, 2.0) - 2.4).abs() < 1e-12);
}
