//! End-to-end service round trip against the checked-in golden files.
//!
//! Replays `tests/golden/service_jobs.jsonl` against an in-process
//! daemon exactly the way CI's `service-smoke` job drives the real
//! binaries (`--serial --golden`), and requires the normalised response
//! stream to **byte-match** `tests/golden/service_reports.golden`.
//! A second pass replays the same script pipelined (no serialisation)
//! and checks the order- and schedule-independent invariants: response
//! order, ok-flags, and bit-identical solve reports.

use cnash_bench::client::{normalise_response, ServiceConn};
use cnash_runtime::Json;
use cnash_service::{serve, ServiceConfig};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .canonicalize()
        .expect("golden dir exists")
}

fn request_lines() -> Vec<String> {
    let text = std::fs::read_to_string(golden_dir().join("service_jobs.jsonl"))
        .expect("request script exists");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

fn golden_lines() -> Vec<String> {
    let text = std::fs::read_to_string(golden_dir().join("service_reports.golden"))
        .expect("golden file exists");
    text.lines().map(String::from).collect()
}

/// The golden stats line reports `"shards":2`; the servers here must
/// match what CI's smoke job passes to `serviced`.
fn config() -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    }
}

#[test]
fn serial_replay_matches_the_golden_file_bytewise() {
    let handle = serve(config()).expect("bind ephemeral port");
    let mut conn = ServiceConn::connect(handle.addr()).expect("connect");
    let mut produced = Vec::new();
    for line in request_lines() {
        let response = conn.round_trip(&line).expect("response per request");
        produced.push(normalise_response(&response));
    }
    handle.join(); // the script ends in a shutdown op
    let golden = golden_lines();
    assert_eq!(
        produced.len(),
        golden.len(),
        "one response per request line"
    );
    for (k, (got, want)) in produced.iter().zip(&golden).enumerate() {
        assert_eq!(got, want, "line {} diverged from the golden file", k + 1);
    }
}

#[test]
fn pipelined_replay_is_report_identical_and_ordered() {
    let handle = serve(config()).expect("bind ephemeral port");
    let mut conn = ServiceConn::connect(handle.addr()).expect("connect");
    let requests = request_lines();
    for line in &requests {
        conn.send_line(line).expect("send");
    }
    conn.finish_writes();
    let mut produced = Vec::new();
    while let Ok(Some(line)) = conn.recv_line() {
        produced.push(normalise_response(&line));
    }
    handle.join();
    let golden = golden_lines();
    assert_eq!(produced.len(), golden.len());
    for (k, (got, want)) in produced.iter().zip(&golden).enumerate() {
        let got = Json::parse(got).expect("parseable response");
        let want = Json::parse(want).expect("parseable golden line");
        // Responses stream in request order whatever the shard timing.
        assert_eq!(
            got.get("id").unwrap().as_u64().unwrap(),
            (k + 1) as u64,
            "response order"
        );
        assert_eq!(
            got.get("ok").unwrap().as_bool().unwrap(),
            want.get("ok").unwrap().as_bool().unwrap()
        );
        // Solve *reports* are schedule-independent (the runtime's
        // determinism contract); cache_hit attribution and the stats
        // counters may legitimately differ under pipelining, so only
        // the report payload is pinned here.
        if let Ok(report) = want.get("report") {
            assert_eq!(
                got.get("report").expect("solve response has report"),
                report,
                "line {}: report diverged under pipelining",
                k + 1
            );
        }
    }
}
