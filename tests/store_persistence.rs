//! End-to-end lifecycle of the persistent solution store, driven the
//! way CI's `store-smoke` job drives the real binaries: solve against a
//! `--store` daemon, replay from disk, survive a daemon restart — and a
//! torn tail write — with byte-identical answers.
//!
//! The identity checks go through `cnash_bench::client::normalise_response`
//! (the golden-file normaliser), pinning the contract the golden jobs
//! rely on: a disk hit normalises to exactly what the cold solve
//! normalised to, and a store-less daemon's responses are unchanged by
//! the store feature existing.

use cnash_bench::client::{normalise_response, ServiceConn};
use cnash_runtime::Json;
use cnash_service::{serve, ServiceConfig, SolutionStore};
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cnash-store-persistence-{tag}-{}.log",
        std::process::id()
    ))
}

fn store_config(path: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        store_path: Some(path.to_string_lossy().into_owned()),
        ..ServiceConfig::default()
    }
}

const SOLVE: &str = r#"{"op":"solve","id":1,"job":{"game":{"builtin":"matching_pennies"},"solver":{"type":"cnash","preset":"paper","intervals":12,"iterations":400,"hardware_seed":7},"runs":2,"base_seed":11},"ground_truth":"enumerate"}"#;

fn round_trip(conn: &mut ServiceConn, line: &str) -> Json {
    let response = conn.round_trip(line).expect("response");
    Json::parse(&response).expect("parseable response")
}

fn provenance(doc: &Json) -> Option<String> {
    doc.get("cache")
        .and_then(Json::as_str)
        .map(String::from)
        .ok()
}

#[test]
fn disk_hits_are_byte_identical_across_restart_and_torn_writes() {
    let path = temp_store("lifecycle");
    let _ = std::fs::remove_file(&path);

    // Daemon A: a cold solve populates the store; the identical request
    // comes back from disk, byte-identical modulo provenance.
    let handle = serve(store_config(&path)).expect("daemon A");
    let mut conn = ServiceConn::connect(handle.addr()).expect("connect");
    let cold = round_trip(&mut conn, SOLVE);
    assert!(cold.get("ok").unwrap().as_bool().unwrap());
    assert_eq!(provenance(&cold), None, "first solve cannot be a disk hit");
    let cold_norm = normalise_response(&cold.compact());

    let hit = round_trip(&mut conn, SOLVE);
    assert_eq!(provenance(&hit).as_deref(), Some("disk"));
    assert_eq!(
        hit.get("program_ms").unwrap().as_f64().unwrap(),
        0.0,
        "a disk hit programs nothing"
    );
    assert_eq!(normalise_response(&hit.compact()), cold_norm);

    // The stats response grows a store block (absent without --store —
    // that side is pinned by the service golden files).
    let stats = round_trip(&mut conn, r#"{"op":"stats","id":2}"#);
    let store_stats = stats.get("store").expect("stats has store block");
    assert_eq!(store_stats.get("hits").unwrap().as_u64().unwrap(), 1);
    assert_eq!(store_stats.get("records").unwrap().as_u64().unwrap(), 1);
    let _ = conn.round_trip(r#"{"op":"shutdown"}"#);
    handle.join();

    // Torn write: a crash mid-append leaves a partial record at the
    // tail. The next boot must absorb it, not refuse to start.
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("append garbage");
        file.write_all(&[0xDE, 0xAD, 0xBE]).expect("torn tail");
    }

    // Daemon B, same path: warm boot recovers the record and serves the
    // same bytes from disk on the very first request.
    let handle = serve(store_config(&path)).expect("daemon B");
    let report = handle.store().expect("store configured").open_report();
    assert_eq!(report.records, 1, "warm boot kept the record");
    assert_eq!(report.truncated_tail_bytes, 3, "torn tail was measured");
    assert!(report.compacted, "recovery compacted the log");
    let mut conn = ServiceConn::connect(handle.addr()).expect("connect B");
    let warm = round_trip(&mut conn, SOLVE);
    assert_eq!(provenance(&warm).as_deref(), Some("disk"));
    assert_eq!(normalise_response(&warm.compact()), cold_norm);
    let _ = conn.round_trip(r#"{"op":"shutdown"}"#);
    handle.join();

    // Recovery rewrote a clean log: fsck agrees.
    let fsck = SolutionStore::fsck(&path).expect("fsck");
    assert!(fsck.ok(), "recovered log is clean: {fsck:?}");
    assert_eq!(fsck.records, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn distinct_jobs_get_distinct_records() {
    let path = temp_store("keys");
    let _ = std::fs::remove_file(&path);
    let handle = serve(store_config(&path)).expect("daemon");
    let mut conn = ServiceConn::connect(handle.addr()).expect("connect");

    // Same game, different base seed → different record; both then
    // replay from disk independently.
    let a = SOLVE;
    let b = &SOLVE.replace(r#""base_seed":11"#, r#""base_seed":12"#);
    assert_eq!(provenance(&round_trip(&mut conn, a)), None);
    assert_eq!(
        provenance(&round_trip(&mut conn, b)),
        None,
        "new seed, new solve"
    );
    let norm_a = normalise_response(&round_trip(&mut conn, a).compact());
    let norm_b = normalise_response(&round_trip(&mut conn, b).compact());
    assert_ne!(norm_a, norm_b, "different seeds produce different reports");
    assert_eq!(handle.store().unwrap().len(), 2);
    let _ = conn.round_trip(r#"{"op":"shutdown"}"#);
    handle.join();
    let _ = std::fs::remove_file(&path);
}
