//! Overload behaviour of the service's reactor front end.
//!
//! The nonblocking rewrite's whole point is that one misbehaving client
//! cannot take the daemon down with it. These tests drive the two
//! canonical abuse patterns end-to-end over real sockets:
//!
//! * a **slow reader** that pipelines thousands of requests and then
//!   reads the responses one byte at a time — the per-connection write
//!   queue must bound memory by *pausing reads* (backpressure), and the
//!   daemon must keep answering other connections at full speed;
//! * a **malformed-line flood** — parse errors are per-request error
//!   *responses* on that connection, never connection or daemon state.

use cnash_runtime::Json;
use cnash_service::{serve, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// Clamps the socket's kernel receive buffer. Without this the
/// kernel's autotuned loopback buffers (tens of MB) would absorb the
/// whole response stream and the daemon would never feel the slow
/// reader at all.
fn clamp_recv_buffer(stream: &TcpStream, bytes: i32) {
    use std::os::unix::io::AsRawFd;
    const SOL_SOCKET: i32 = if cfg!(target_os = "linux") { 1 } else { 0xffff };
    const SO_RCVBUF: i32 = if cfg!(target_os = "linux") { 8 } else { 0x1002 };
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            std::ptr::from_ref(&bytes).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

fn ping_ok(addr: SocketAddr, id: u64) -> Json {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    conn.write_all(format!("{{\"op\":\"ping\",\"id\":{id}}}\n").as_bytes())
        .unwrap();
    let mut line = String::new();
    BufReader::new(conn).read_line(&mut line).unwrap();
    let doc = Json::parse(&line).expect("protocol JSON");
    assert!(doc.get("pong").unwrap().as_bool().unwrap(), "{line}");
    doc
}

#[test]
fn slow_reader_is_backpressured_while_the_daemon_stays_responsive() {
    // Enough pings that the response stream (~0.5 MB) cannot hide in
    // the kernel's socket buffers once both sides are clamped: the
    // daemon must queue — and, with a tiny soft limit, stop reading —
    // long before the client drains.
    const PINGS: usize = 6_000;
    let handle = serve(ServiceConfig {
        write_queue_soft_limit: 2 * 1024,
        send_buffer_bytes: Some(16 * 1024),
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let writer = TcpStream::connect(addr).expect("connect");
    clamp_recv_buffer(&writer, 16 * 1024);
    let mut reader = writer.try_clone().expect("clone");
    let writer_thread = std::thread::spawn(move || {
        let mut writer = writer;
        let mut block = Vec::with_capacity(PINGS * 32);
        for id in 1..=PINGS {
            block.extend_from_slice(format!("{{\"op\":\"ping\",\"id\":{id}}}\n").as_bytes());
        }
        writer.write_all(&block).expect("pipelined requests");
        writer.shutdown(Shutdown::Write).expect("half-close");
    });

    // The slow-reader phase: 1 byte every 10 ms. While this connection
    // crawls, the daemon must answer a second connection instantly.
    reader
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut trickled = Vec::new();
    let mut byte = [0u8; 1];
    for k in 0..30 {
        reader.read_exact(&mut byte).expect("trickle byte");
        trickled.push(byte[0]);
        std::thread::sleep(Duration::from_millis(10));
        if k % 10 == 0 {
            ping_ok(addr, 900_000 + k);
        }
    }

    // Full-speed drain: every pipelined response arrives, in order.
    reader.set_read_timeout(None).unwrap();
    reader.read_to_end(&mut trickled).expect("drain responses");
    writer_thread.join().expect("writer thread");
    let lines: Vec<&[u8]> = trickled
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .collect();
    assert_eq!(lines.len(), PINGS, "every pipelined request answered");
    for (k, line) in lines.iter().enumerate() {
        let doc = Json::parse(std::str::from_utf8(line).unwrap()).expect("protocol JSON");
        assert_eq!(
            doc.get("id").unwrap().as_usize().unwrap(),
            k + 1,
            "responses stream in request order"
        );
    }

    // The reactor must have paused reads at least once — that pause is
    // what bounded the write queue instead of letting it absorb the
    // whole megabyte.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"{\"op\":\"metrics\",\"id\":1}\n").unwrap();
    let mut line = String::new();
    BufReader::new(conn).read_line(&mut line).unwrap();
    let doc = Json::parse(&line).unwrap();
    let counters = doc.get("metrics").unwrap().get("counters").unwrap();
    let stalls = counters
        .get("conn_backpressure_stalls")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(stalls >= 1, "expected at least one backpressure stall");
    assert_eq!(
        counters
            .get("conn_overflow_dropped")
            .unwrap()
            .as_u64()
            .unwrap(),
        0,
        "backpressure, not connection drops, absorbs a slow reader"
    );
    handle.stop();
}

#[test]
fn malformed_line_flood_is_isolated_to_per_request_errors() {
    let handle = serve(ServiceConfig::default()).unwrap();
    let addr = handle.addr();

    // A bystander connection opened before the flood...
    let mut bystander = TcpStream::connect(addr).unwrap();
    bystander
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let mut flood = TcpStream::connect(addr).unwrap();
    for k in 0..100 {
        flood
            .write_all(format!("this is not protocol json #{k}\n").as_bytes())
            .unwrap();
    }
    flood.write_all(b"{\"op\":\"ping\",\"id\":7}\n").unwrap();
    flood.shutdown(Shutdown::Write).unwrap();
    let reader = BufReader::new(flood);
    let responses: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    // One response per line — all errors except the final valid ping,
    // still in request order: garbage costs that request, nothing else.
    assert_eq!(responses.len(), 101);
    for line in &responses[..100] {
        let doc = Json::parse(line).expect("protocol JSON");
        assert!(!doc.get("ok").unwrap().as_bool().unwrap(), "{line}");
    }
    let pong = Json::parse(&responses[100]).unwrap();
    assert_eq!(pong.get("id").unwrap().as_usize().unwrap(), 7);
    assert!(pong.get("pong").unwrap().as_bool().unwrap());

    // ...still gets its answer after the flood.
    bystander
        .write_all(b"{\"op\":\"ping\",\"id\":8}\n")
        .unwrap();
    let mut line = String::new();
    BufReader::new(bystander).read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\":true"), "{line}");
    handle.stop();
}
