//! End-to-end integration: the full paper pipeline on every benchmark.

use cnash_core::baselines::DWaveNashSolver;
use cnash_core::{CNashConfig, CNashSolver, ExperimentRunner, NashSolver};
use cnash_game::equilibrium::StrategyKind;
use cnash_game::games;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_qubo::dwave::DWaveModel;

/// C-Nash (paper hardware config) solves every benchmark game in a clear
/// majority of runs and its returned profiles verify exactly.
#[test]
fn cnash_solves_every_benchmark() {
    for bench in games::paper_benchmarks() {
        let cfg = CNashConfig::paper(12).with_iterations(bench.paper_iterations / 5);
        let solver = CNashSolver::new(&bench.game, cfg, 0).expect("hardware maps");
        let mut successes = 0;
        let runs = 20;
        for seed in 0..runs {
            let out = solver.run(seed);
            if out.is_equilibrium {
                successes += 1;
                let (p, q) = out.into_pair().expect("profile");
                assert!(bench.game.is_equilibrium(&p, &q, 1e-6));
            }
        }
        assert!(
            successes * 2 > runs,
            "{}: only {successes}/{runs} runs succeeded",
            bench.game.name()
        );
    }
}

/// Across enough runs C-Nash covers *all* equilibria of the two smaller
/// benchmarks, pure and mixed (the paper's Fig. 9 claim).
#[test]
fn cnash_covers_all_equilibria_of_small_benchmarks() {
    for (game, iterations) in [
        (games::battle_of_the_sexes(), 10_000),
        (games::bird_game(), 15_000),
    ] {
        let truth = enumerate_equilibria(&game, 1e-9);
        let cfg = CNashConfig::paper(12).with_iterations(iterations);
        let solver = CNashSolver::new(&game, cfg, 1).expect("maps");
        let runner = ExperimentRunner::new(40, 7);
        let report = runner.evaluate(&solver, &truth);
        assert_eq!(
            report.covered,
            report.target_count,
            "{}: covered {}/{}",
            game.name(),
            report.covered,
            report.target_count
        );
    }
}

/// The qualitative Table-1 ordering: C-Nash beats both baselines on the
/// Bird Game, and 2000Q6 is not worse than Advantage 4.1.
#[test]
fn solver_ordering_on_bird_game() {
    let game = games::bird_game();
    let truth = enumerate_equilibria(&game, 1e-9);
    let runner = ExperimentRunner::new(60, 3);

    let cnash =
        CNashSolver::new(&game, CNashConfig::paper(12).with_iterations(3000), 0).expect("maps");
    let q2000 = DWaveNashSolver::new(&game, DWaveModel::dwave_2000q(), 1).expect("builds");
    let advantage = DWaveNashSolver::new(&game, DWaveModel::advantage_4_1(), 1).expect("builds");

    let rc = runner.evaluate(&cnash, &truth);
    let rq = runner.evaluate(&q2000, &truth);
    let ra = runner.evaluate(&advantage, &truth);

    assert!(
        rc.success_rate > rq.success_rate && rc.success_rate > ra.success_rate,
        "C-Nash {} vs 2000Q {} vs Advantage {}",
        rc.success_rate,
        rq.success_rate,
        ra.success_rate
    );
    assert!(
        rq.success_rate >= ra.success_rate - 10.0,
        "2000Q should not trail Advantage by much: {} vs {}",
        rq.success_rate,
        ra.success_rate
    );
}

/// Only C-Nash produces mixed solutions; the baselines are structurally
/// pure-only (Fig. 8 claim).
#[test]
fn only_cnash_finds_mixed_solutions() {
    let game = games::bird_game();
    let truth = enumerate_equilibria(&game, 1e-9);
    let runner = ExperimentRunner::new(40, 11);

    let cnash =
        CNashSolver::new(&game, CNashConfig::paper(12).with_iterations(5000), 2).expect("maps");
    let rc = runner.evaluate(&cnash, &truth);
    assert!(rc.distribution.mixed_ne > 0, "C-Nash found no mixed NE");
    assert!(rc
        .distinct_found
        .iter()
        .any(|e| e.kind(1e-6) == StrategyKind::Mixed));

    let advantage = DWaveNashSolver::new(&game, DWaveModel::advantage_4_1(), 1).expect("builds");
    let ra = runner.evaluate(&advantage, &truth);
    assert_eq!(ra.distribution.mixed_ne, 0, "baseline reported a mixed NE");
}

/// Model time-to-solution ordering of Fig. 10: C-Nash is orders of
/// magnitude faster than both QPU baselines.
#[test]
fn tts_ordering_matches_fig10() {
    let game = games::battle_of_the_sexes();
    let truth = enumerate_equilibria(&game, 1e-9);
    let runner = ExperimentRunner::new(30, 0);

    let cnash =
        CNashSolver::new(&game, CNashConfig::paper(12).with_iterations(10_000), 0).expect("maps");
    let q2000 = DWaveNashSolver::new(&game, DWaveModel::dwave_2000q(), 1).expect("builds");

    let rc = runner.evaluate(&cnash, &truth);
    let rq = runner.evaluate(&q2000, &truth);
    assert!(rc.mean_time_to_solution.is_finite());
    assert!(
        rq.mean_time_to_solution / rc.mean_time_to_solution > 50.0,
        "QPU {} vs CiM {}",
        rq.mean_time_to_solution,
        rc.mean_time_to_solution
    );
}

/// Matching pennies end-to-end: no pure equilibrium exists, the baseline
/// must fail and C-Nash must find the mixed one — the paper's core
/// motivating scenario.
#[test]
fn mixed_only_game_separates_solvers() {
    let game = games::matching_pennies();
    let cnash =
        CNashSolver::new(&game, CNashConfig::paper(12).with_iterations(10_000), 0).expect("maps");
    let mut cnash_successes = 0;
    for seed in 0..10 {
        if cnash.run(seed).is_equilibrium {
            cnash_successes += 1;
        }
    }
    assert!(
        cnash_successes >= 5,
        "C-Nash solved only {cnash_successes}/10"
    );

    let baseline = DWaveNashSolver::new(&game, DWaveModel::dwave_2000q(), 5).expect("builds");
    for seed in 0..10 {
        assert!(!baseline.run(seed).is_equilibrium);
    }
}
