//! Integration tests of the extension modules working together.

use cnash_core::certificate::Certificate;
use cnash_core::reduced::ReducedCNashSolver;
use cnash_core::{CNashConfig, CNashSolver, NashSolver};
use cnash_crossbar::binary_mapping::BitSlicedCrossbar;
use cnash_crossbar::QuantizedPayoffs;
use cnash_device::cell::CellParams;
use cnash_device::retention::{aged_window_fraction, EnduranceModel, RetentionModel};
use cnash_device::variability::VariabilityModel;
use cnash_game::fictitious_play::fictitious_play;
use cnash_game::library;
use cnash_game::reduction::eliminate_dominated;
use cnash_game::replicator::replicator_dynamics;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::MixedStrategy;

/// Reduced and direct solvers agree on the equilibrium set they find.
#[test]
fn reduced_and_direct_solvers_agree() {
    let g = cnash_game::games::modified_prisoners_dilemma();
    let direct =
        CNashSolver::new(&g, CNashConfig::paper(12).with_iterations(5000), 0).expect("maps");
    let reduced =
        ReducedCNashSolver::new(&g, CNashConfig::paper(12).with_iterations(5000), 0).expect("maps");
    for seed in 0..5 {
        let d = direct.run(seed);
        let r = reduced.run(seed);
        // Both succeed and return verifiable equilibria (not necessarily
        // the same one — different grids walk differently).
        if let (Some((dp, dq)), Some((rp, rq))) = (d.pair(), r.pair()) {
            if d.is_equilibrium {
                assert!(g.is_equilibrium(dp, dq, 1e-6));
            }
            if r.is_equilibrium {
                assert!(g.is_equilibrium(rp, rq, 1e-6));
                assert_eq!(rp.len(), 8);
            }
        }
    }
}

/// Every solver answer can be certified, and the certificate agrees with
/// the run's own verdict.
#[test]
fn certificates_match_solver_verdicts() {
    let g = cnash_game::games::bird_game();
    let solver =
        CNashSolver::new(&g, CNashConfig::paper(12).with_iterations(4000), 1).expect("maps");
    for seed in 0..10 {
        let out = solver.run(seed);
        let claimed = out.is_equilibrium;
        let (p, q) = out.into_pair().expect("profile");
        let cert = Certificate::build(&g, p, q, 1e-6).expect("builds");
        assert_eq!(cert.is_valid(), claimed, "seed {seed}");
        if cert.is_valid() {
            assert!(cert.support_condition_holds());
        }
    }
}

/// The three learning/algorithmic equilibrium finders all land inside
/// the support-enumeration ground truth on the library games where they
/// are guaranteed to converge.
#[test]
fn dynamics_cross_check_on_library_games() {
    // Fictitious play on the (zero-sum-like) inspection game.
    let g = library::inspection_game();
    let truth = enumerate_equilibria(&g, 1e-9);
    let fp = fictitious_play(&g, 0, 0, 300_000).expect("runs");
    assert!(fp.gap < 0.02, "FP gap {}", fp.gap);
    assert!(truth
        .iter()
        .any(|e| { e.row.linf_distance(&fp.row) < 0.05 && e.col.linf_distance(&fp.col) < 0.05 }));

    // Replicator dynamics on dominance-solvable deadlock.
    let g = library::deadlock();
    let start = MixedStrategy::new(vec![0.6, 0.4]).expect("valid");
    let r = replicator_dynamics(&g, &start, &start, 50_000, 1e-12).expect("runs");
    assert!(r.gap < 1e-6);
    assert!(r.row.prob(1) > 0.999, "deadlock converges to defect");
}

/// Dominance reduction composes with the extended library.
#[test]
fn reduction_on_library_games() {
    let g = library::public_goods_binary();
    let r = eliminate_dominated(&g).expect("reduces");
    assert_eq!(r.game.row_actions(), 1);
    let g = library::chicken();
    let r = eliminate_dominated(&g).expect("reduces");
    assert_eq!(r.rounds, 0, "chicken has no dominated actions");
}

/// Bit-sliced and unary mappings measure the same values when ideal, and
/// the bit-sliced array uses fewer cells.
#[test]
fn binary_mapping_consistent_with_unary() {
    let g = cnash_game::games::modified_prisoners_dilemma();
    let qp = QuantizedPayoffs::from_integer_matrix(g.row_payoffs()).expect("integer");
    let sliced =
        BitSlicedCrossbar::build(qp, 12, CellParams::default(), VariabilityModel::none(), 0)
            .expect("builds");
    assert!(sliced.cell_count() < sliced.unary_cell_count());

    let p = [0u32, 0, 0, 0, 6, 6, 0, 0];
    let q = [0u32, 0, 0, 0, 12, 0, 0, 0];
    let val = sliced.current_to_value(sliced.read_vmv(&p, &q).expect("read"));
    let pv: Vec<f64> = p.iter().map(|&c| c as f64 / 12.0).collect();
    let qv: Vec<f64> = q.iter().map(|&c| c as f64 / 12.0).collect();
    let exact = g.row_payoffs().bilinear(&pv, &qv).expect("shapes");
    assert!((val - exact).abs() < 1e-3, "{val} vs {exact}");
}

/// Ageing models compose: a store-once C-Nash deployment survives a
/// 10-year mission with a healthy window, while write-heavy usage dies.
#[test]
fn ageing_supports_store_once_usage() {
    let retention = RetentionModel::default();
    let endurance = EnduranceModel::default();
    let ten_years = 3.15e8;
    // Store once (one write cycle), anneal for a decade: window > 70 %.
    let store_once = aged_window_fraction(&retention, &endurance, ten_years, 1.0);
    assert!(store_once > 0.7, "store-once window {store_once}");
    // Rewriting payoffs at ~3 kHz for 10 years (~1e12 cycles): endurance
    // collapse far past the 1e10-cycle fatigue point.
    let write_heavy = aged_window_fraction(&retention, &endurance, ten_years, 1e12);
    assert!(write_heavy < 0.2, "write-heavy window {write_heavy}");
}

/// Tempered solving covers the MPD equilibrium set at least as fast (in
/// hit states per run) as plain SA on hard instances.
#[test]
fn tempering_collects_multiple_solutions_per_run() {
    let g = cnash_game::games::modified_prisoners_dilemma();
    let solver =
        CNashSolver::new(&g, CNashConfig::paper(12).with_iterations(12_000), 0).expect("maps");
    let mut tempered_hits = 0;
    for seed in 0..3 {
        tempered_hits += solver.run_tempered(seed, 6).solutions.len();
    }
    assert!(
        tempered_hits >= 3,
        "tempered runs collected only {tempered_hits} candidate solutions"
    );
}
