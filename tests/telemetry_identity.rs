//! Telemetry must observe, never steer: recording counters, spans and
//! sampled energy traces around the anneal hot path may not change a
//! single bit of any solver output.
//!
//! The recorder switches are process-global
//! (`cnash_telemetry::set_enabled`,
//! `cnash_telemetry::hot::set_sa_trace_interval`), so everything here
//! lives in **one** `#[test]` — a second test toggling the switches
//! from a parallel test thread would race the property being checked.

use cnash_core::{CNashConfig, CNashSolver, NashSolver};
use cnash_runtime::spec::GameSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary small games, run seeds and silicon, the complete
    /// run outcome (profile, equilibrium flag, model times, objective)
    /// is bit-identical whether telemetry is enabled or disabled, and
    /// whether the annealer's energy-trajectory sampling is off or
    /// firing every few iterations. `RunOutcome` carries only model
    /// time (no wall clock), so the `Debug` rendering is a faithful
    /// bit-level fingerprint.
    #[test]
    fn solver_output_is_bit_identical_under_every_recorder_mode(
        rows in 2usize..5,
        cols in 2usize..5,
        game_seed in 0u64..100,
        run_seed in 0u64..100,
        hardware_seed in 0u64..8,
        trace_every in 1u64..16,
    ) {
        let game = GameSpec::Random { rows, cols, max_payoff: 4, seed: game_seed }
            .build()
            .expect("random spec builds");
        let solve = || {
            let solver = CNashSolver::new(
                &game,
                CNashConfig::paper(12).with_iterations(400),
                hardware_seed,
            )
            .expect("game maps onto the crossbar");
            format!("{:?}", solver.run(run_seed))
        };

        // Baseline: the production default (recording on, trace off),
        // then every other recorder mode.
        let modes = [(true, 0), (false, 0), (true, trace_every), (false, trace_every)];
        let mut outputs = Vec::new();
        for (enabled, interval) in modes {
            cnash_telemetry::set_enabled(enabled);
            cnash_telemetry::hot::set_sa_trace_interval(interval);
            outputs.push(solve());
        }
        cnash_telemetry::set_enabled(true);
        cnash_telemetry::hot::set_sa_trace_interval(0);

        prop_assert_eq!(&outputs[1], &outputs[0]);
        prop_assert_eq!(&outputs[2], &outputs[0]);
        prop_assert_eq!(&outputs[3], &outputs[0]);
    }
}
