//! Reproducibility: everything in the pipeline is seeded, so identical
//! inputs must give identical outputs — the property that makes the
//! EXPERIMENTS.md numbers reproducible on any machine.

use cnash_core::baselines::DWaveNashSolver;
use cnash_core::{CNashConfig, CNashSolver, ExperimentRunner, NashSolver};
use cnash_game::games;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_qubo::dwave::DWaveModel;

#[test]
fn cnash_full_report_is_deterministic() {
    let game = games::bird_game();
    let truth = enumerate_equilibria(&game, 1e-9);
    let runner = ExperimentRunner::new(10, 42);
    let make = || {
        let solver =
            CNashSolver::new(&game, CNashConfig::paper(12).with_iterations(2000), 7).expect("maps");
        runner.evaluate(&solver, &truth)
    };
    let a = make();
    let b = make();
    assert_eq!(a.success_rate, b.success_rate);
    assert_eq!(a.distribution, b.distribution);
    assert_eq!(a.covered, b.covered);
    assert_eq!(a.mean_time_to_solution, b.mean_time_to_solution);
}

#[test]
fn dwave_report_is_deterministic() {
    let game = games::battle_of_the_sexes();
    let truth = enumerate_equilibria(&game, 1e-9);
    let runner = ExperimentRunner::new(10, 3);
    let make = || {
        let solver = DWaveNashSolver::new(&game, DWaveModel::advantage_4_1(), 2).expect("builds");
        runner.evaluate(&solver, &truth)
    };
    let a = make();
    let b = make();
    assert_eq!(a.success_rate, b.success_rate);
    assert_eq!(a.covered, b.covered);
}

#[test]
fn different_hardware_seeds_give_different_silicon() {
    let game = games::bird_game();
    let a = CNashSolver::new(&game, CNashConfig::paper(12), 1).expect("maps");
    let b = CNashSolver::new(&game, CNashConfig::paper(12), 2).expect("maps");
    // Same SA seed on different silicon: outcomes may differ, and the
    // measured objective of the same state must differ.
    let state = cnash_anneal::moves::GridStrategyPair::all_on_first(3, 3, 12).expect("valid");
    assert_ne!(a.evaluate(&state), b.evaluate(&state));
}

#[test]
fn different_run_seeds_explore_differently() {
    let game = games::modified_prisoners_dilemma();
    let solver =
        CNashSolver::new(&game, CNashConfig::paper(12).with_iterations(2000), 0).expect("maps");
    let outcomes: Vec<_> = (0..8).map(|s| solver.run(s)).collect();
    let distinct_profiles = outcomes
        .iter()
        .filter_map(|o| o.profile.as_ref())
        .collect::<Vec<_>>();
    // At least two different returned profiles across 8 seeds.
    let first = distinct_profiles[0];
    assert!(
        distinct_profiles.iter().any(|p| *p != first),
        "all seeds returned the identical profile"
    );
}
