//! End-to-end exercise of the batch runtime from the jobs-file surface:
//! JSON in, parallel portfolio execution, JSON report out — the path the
//! `batch` binary drives.

use cnash_core::ExperimentRunner;
use cnash_runtime::report::{batch_report_json, portfolio_json};
use cnash_runtime::{BatchSpec, Json, PortfolioRunner, PortfolioStop};

const JOBS_FILE: &str = r#"
{
  "mode": "portfolio",
  "threads": 4,
  "jobs": [
    {
      "game": {"builtin": "battle_of_the_sexes"},
      "solver": {"type": "cnash", "preset": "ideal", "intervals": 12,
                 "iterations": 2000, "hardware_seed": 0},
      "runs": 30,
      "base_seed": 0,
      "early_stop": {"successes": 1}
    },
    {
      "game": {"builtin": "battle_of_the_sexes"},
      "solver": {"type": "dwave", "model": "2000q", "reads_per_run": 1},
      "runs": 30,
      "base_seed": 100
    }
  ]
}
"#;

#[test]
fn jobs_file_runs_end_to_end() {
    let spec = BatchSpec::from_json(JOBS_FILE).expect("valid jobs file");
    assert_eq!(spec.stop, PortfolioStop::FirstTarget);
    assert_eq!(spec.threads, 4);

    let jobs: Vec<_> = spec
        .jobs
        .iter()
        .map(|j| j.prepare().expect("buildable job"))
        .collect();
    let outcome = PortfolioRunner::new()
        .threads(spec.threads)
        .stop(spec.stop)
        .run(&jobs);

    // The ideal-config C-Nash job finds a verified equilibrium quickly.
    let winner = outcome.winner.expect("a job reaches its target");
    let batch = &outcome.results[winner].batch;
    assert!(batch.stopped_early);
    for eq in &batch.report.distinct_found {
        let game = jobs[winner]
            .solver
            .game()
            .as_bimatrix()
            .expect("portfolio jobs are bimatrix");
        assert!(game.is_equilibrium(&eq.row, &eq.col, 1e-6));
    }

    // The whole outcome serialises to parseable JSON.
    let doc = Json::parse(&portfolio_json(&outcome).pretty()).expect("valid JSON out");
    assert_eq!(doc.get("jobs").unwrap().as_arr().unwrap().len(), jobs.len());
}

#[test]
fn batch_runtime_agrees_with_sequential_harness() {
    let spec = BatchSpec::from_json(JOBS_FILE).expect("valid jobs file");
    let job = &spec.jobs[1]; // the D-Wave baseline, no early stop
    let prepared = job.prepare().expect("buildable");
    let sequential = ExperimentRunner::new(job.runs, job.base_seed)
        .evaluate(prepared.solver.as_ref(), &prepared.ground_truth);

    for threads in [1, 3] {
        let parallel = cnash_runtime::BatchRunner::new(job.runs, job.base_seed)
            .threads(threads)
            .evaluate(prepared.solver.as_ref(), &prepared.ground_truth);
        assert_eq!(parallel.report, sequential, "threads = {threads}");
        let json = batch_report_json(&parallel).pretty();
        assert!(Json::parse(&json).is_ok());
    }
}
