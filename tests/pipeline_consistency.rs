//! Cross-crate consistency: the hardware pipeline must agree with exact
//! game-theoretic arithmetic wherever the paper claims losslessness.

use cnash_anneal::moves::GridStrategyPair;
use cnash_core::{CNashConfig, CNashSolver};
use cnash_crossbar::{BiCrossbar, CrossbarConfig};
use cnash_game::{games, BimatrixGame, MixedStrategy};
use cnash_qubo::maxqubo::{compositions, MaxQubo};
use cnash_qubo::squbo::{SQubo, SQuboWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ideal-hardware Nash gap equals the exact gap on every grid point of
/// every benchmark game (the lossless-transformation claim, end to end).
#[test]
fn ideal_hardware_gap_is_exact_on_the_full_grid() {
    for game in [games::battle_of_the_sexes(), games::bird_game()] {
        let intervals = 6; // keep the exhaustive sweep small
        let xbar = BiCrossbar::build(&game, &CrossbarConfig::ideal(intervals), 0).expect("maps");
        let n = game.row_actions();
        let m = game.col_actions();
        for pc in compositions(intervals, n) {
            let p = MixedStrategy::from_grid_counts(&pc, intervals).expect("valid");
            for qc in compositions(intervals, m) {
                let q = MixedStrategy::from_grid_counts(&qc, intervals).expect("valid");
                let hw = xbar.nash_gap(&p, &q).expect("read");
                let exact = game.nash_gap(&p, &q).expect("shapes");
                assert!(
                    (hw - exact).abs() < 5e-4,
                    "{}: ({p}, {q}): hw {hw} vs exact {exact}",
                    game.name()
                );
            }
        }
    }
}

/// The noisy (paper-config) hardware evaluation stays within a small
/// envelope of the exact objective — the robustness premise of Sec. 4.1.
#[test]
fn noisy_hardware_gap_stays_within_envelope() {
    let game = games::modified_prisoners_dilemma();
    let solver = CNashSolver::new(&game, CNashConfig::paper(12), 9).expect("maps");
    let mut rng = StdRng::seed_from_u64(5);
    let mut worst: f64 = 0.0;
    for _ in 0..200 {
        let state = GridStrategyPair::random(8, 8, 12, &mut rng).expect("valid");
        let hw = solver.evaluate(&state);
        let exact = game
            .nash_gap(&state.p_strategy(), &state.q_strategy())
            .expect("shapes");
        worst = worst.max((hw - exact).abs());
    }
    assert!(worst < 0.15, "worst hardware error {worst}");
}

/// MAX-QUBO grid minima coincide with the support-enumeration ground
/// truth for every benchmark whose equilibria fit the 1/12 grid.
#[test]
fn grid_minima_equal_ground_truth() {
    for game in [games::battle_of_the_sexes(), games::bird_game()] {
        let truth = cnash_game::support_enum::enumerate_equilibria(&game, 1e-9);
        let minima = MaxQubo::new(&game).grid_minima(12, 1e-9).expect("grid");
        assert_eq!(minima.len(), truth.len(), "{}", game.name());
        for (p, q, f) in &minima {
            assert!(f.abs() < 1e-9);
            assert!(
                truth
                    .iter()
                    .any(|e| e.row.linf_distance(p) < 1e-6 && e.col.linf_distance(q) < 1e-6),
                "{}: grid minimum not in ground truth",
                game.name()
            );
        }
    }
}

/// S-QUBO's feasible restriction equals the pure-profile Nash gap for all
/// benchmarks — the lossiness lives in the binary-only representation and
/// the penalty landscape, not in the feasible values themselves.
#[test]
fn squbo_pure_ground_states_match_pure_equilibria() {
    for bench in games::paper_benchmarks() {
        let game = &bench.game;
        let squbo = SQubo::build(game, &SQuboWeights::default()).expect("integer payoffs");
        if squbo.num_vars() > 24 {
            continue; // brute force only where exhaustive search is sane
        }
        let (x, e) = squbo.qubo().brute_force_minimum();
        let pure = game.pure_equilibria(1e-9);
        if pure.is_empty() {
            assert!(
                e > 1e-6,
                "{}: no pure NE but zero ground energy",
                game.name()
            );
        } else {
            assert!(e.abs() < 1e-9, "{}: ground energy {e}", game.name());
            let d = squbo.decode(&x);
            let (p, q) = d.profile.expect("one-hot ground state");
            let i = p.pure_action(1e-9).expect("pure");
            let j = q.pure_action(1e-9).expect("pure");
            assert!(
                pure.contains(&(i, j)),
                "{}: ({i},{j}) not a pure NE",
                game.name()
            );
        }
    }
}

/// Offset invariance end to end: shifting all payoffs by a constant does
/// not change what the hardware-solver measures (the crossbar stores the
/// shifted matrix; the MAX-QUBO gap cancels the shift).
#[test]
fn payoff_offset_invariance_through_hardware() {
    let base = games::bird_game();
    let shifted = BimatrixGame::new(
        "bird+7",
        base.row_payoffs().map(|x| x + 7.0),
        base.col_payoffs().map(|x| x + 7.0),
    )
    .expect("shapes");

    let a = BiCrossbar::build(&base, &CrossbarConfig::ideal(12), 0).expect("maps");
    let b = BiCrossbar::build(&shifted, &CrossbarConfig::ideal(12), 0).expect("maps");
    let p = MixedStrategy::new(vec![0.5, 0.25, 0.25]).expect("valid");
    let q = MixedStrategy::new(vec![0.25, 0.25, 0.5]).expect("valid");
    let ga = a.nash_gap(&p, &q).expect("read");
    let gb = b.nash_gap(&p, &q).expect("read");
    assert!(
        (ga - gb).abs() < 1e-4,
        "offset changed hardware gap: {ga} vs {gb}"
    );
}

/// The WTA path and the exact-max path agree to within the tree's error
/// bound on Phase-1 data, end to end through the solver.
#[test]
fn wta_and_exact_max_paths_agree_within_bound() {
    let game = games::modified_prisoners_dilemma();
    let mut cfg = CNashConfig::paper(12);
    cfg.crossbar.variability = cnash_device::variability::VariabilityModel::none();
    cfg.crossbar.adc_bits = None;

    let with_wta = CNashSolver::new(&game, cfg, 3).expect("maps");
    cfg.use_wta = false;
    let without = CNashSolver::new(&game, cfg, 3).expect("maps");

    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..50 {
        let state = GridStrategyPair::random(8, 8, 12, &mut rng).expect("valid");
        let a = with_wta.evaluate(&state);
        let b = without.evaluate(&state);
        // Two maxima of magnitude ≤ 6 payoff units, each with ≤ ~0.76%
        // compounded tree offset (3 levels × 0.25%).
        assert!((a - b).abs() < 0.1, "WTA {a} vs exact {b}");
    }
}
