//! Agreement between the independent ground-truth solvers: support
//! enumeration (the Nashpy substitute), Lemke–Howson and exhaustive
//! MAX-QUBO grid search.

use cnash_game::games;
use cnash_game::generators::{random_coordination_game, random_integer_game};
use cnash_game::lemke_howson::lemke_howson_all_labels;
use cnash_game::support_enum::enumerate_equilibria;

/// Every Lemke–Howson solution appears in the enumerated set, for all
/// named games and a batch of random ones.
#[test]
fn lemke_howson_subset_of_enumeration() {
    let mut checked = 0;
    let named = vec![
        games::battle_of_the_sexes(),
        games::bird_game(),
        games::prisoners_dilemma(),
        games::stag_hunt(),
        games::hawk_dove(),
        games::matching_pennies(),
        games::rock_paper_scissors(),
    ];
    let random: Vec<_> = (0..10)
        .filter_map(|s| random_integer_game(3, 3, 9, s).ok())
        .collect();
    for game in named.into_iter().chain(random) {
        let all = enumerate_equilibria(&game, 1e-9);
        for eq in lemke_howson_all_labels(&game) {
            assert!(
                all.iter().any(|t| t.same_profile(&eq, 1e-5)),
                "{}: LH solution {eq} missing from enumeration",
                game.name()
            );
            checked += 1;
        }
    }
    assert!(checked > 10, "cross-check exercised too few solutions");
}

/// Enumeration output always verifies, and pure-equilibria enumeration by
/// best-response scanning agrees with the support-size-1 results.
#[test]
fn pure_enumeration_consistency() {
    for seed in 0..20 {
        let game = random_coordination_game(4, 5, 3, seed).expect("valid");
        let all = enumerate_equilibria(&game, 1e-9);
        let pure_direct = game.pure_equilibria(1e-9);
        let pure_from_enum: Vec<(usize, usize)> = all
            .iter()
            .filter_map(|e| Some((e.row.pure_action(1e-6)?, e.col.pure_action(1e-6)?)))
            .collect();
        for ij in &pure_from_enum {
            assert!(
                pure_direct.contains(ij),
                "seed {seed}: enumerated pure NE {ij:?} not found by scanning"
            );
        }
        for ij in &pure_direct {
            assert!(
                pure_from_enum.contains(ij),
                "seed {seed}: scanned pure NE {ij:?} not enumerated"
            );
        }
    }
}

/// Every finite game has an equilibrium (Nash's theorem): the enumerator
/// must return at least one for every (nondegenerate) random instance.
#[test]
fn enumeration_never_comes_up_empty() {
    for seed in 100..130 {
        let game = random_integer_game(4, 4, 12, seed).expect("valid");
        let eqs = enumerate_equilibria(&game, 1e-9);
        assert!(!eqs.is_empty(), "seed {seed}: no equilibrium found");
        for e in &eqs {
            assert!(game.is_equilibrium(&e.row, &e.col, 1e-7));
        }
    }
}
