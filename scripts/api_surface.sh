#!/usr/bin/env bash
# Regenerates docs/API_SURFACE.txt — the committed snapshot of every
# workspace crate's public API surface (pub items and re-exports,
# excluding binary targets and #[cfg(test)] modules' bodies are not
# distinguished: the snapshot is a line-level approximation from
# source, not rustdoc JSON, so it stays toolchain-independent).
#
# CI's `api-surface` job runs this script and fails if the committed
# snapshot differs — public-API changes must land with a regenerated
# snapshot in the same diff, making API breaks deliberate and visible
# in review. Regenerate with:
#
#     scripts/api_surface.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out=docs/API_SURFACE.txt
{
    echo "# Public API surface — regenerate with scripts/api_surface.sh"
    echo "# One line per \`pub\` item or re-export, per crate source file"
    echo "# (binary targets under src/bin are not part of the library API)."
    find crates -name '*.rs' -path '*/src/*' ! -path '*/src/bin/*' \
        | LC_ALL=C sort \
        | while read -r f; do
            awk -v file="$f" '
                /^[[:space:]]*pub (fn|unsafe fn|struct|enum|trait|const|static|type|mod|use) / {
                    line = $0
                    sub(/^[[:space:]]+/, "", line)
                    # Normalize away bodies/signatures: keep the item
                    # kind and name, cut at the first delimiter that
                    # starts generics, arguments, values or bodies.
                    if (line ~ /^pub use /) {
                        sub(/;.*$/, "", line)
                    } else {
                        sub(/[({;=].*$/, "", line)
                        sub(/<.*$/, "", line)
                        sub(/:.*$/, "", line)
                        sub(/[[:space:]]+$/, "", line)
                    }
                    print file ": " line
                }
            ' "$f"
        done
} > "$out"
echo "wrote $out ($(grep -c ': pub ' "$out") items)"
