//! Bring your own game: defines a 4×4 market-entry game from scratch,
//! enumerates its equilibria, and solves it on the C-Nash hardware.
//!
//! Two firms simultaneously pick an aggressiveness level for entering a
//! market (stay out / niche / broad / all-in). Payoffs reward matching the
//! rival's restraint and punish head-on collisions — a structure with both
//! pure and mixed equilibria, like the paper's benchmarks.
//!
//! Run with: `cargo run -p cnash-core --example custom_game --release`

use cnash_core::{CNashConfig, CNashSolver, NashSolver};
use cnash_game::support_enum::enumerate_equilibria;
use cnash_game::{BimatrixGame, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Integer payoffs map directly onto unary crossbar cells. Payoffs
    // reward avoiding the rival's positioning: head-on collisions score 0.
    let row = Matrix::from_rows(&[
        vec![0.0, 4.0, 2.0, 4.0], // stay out & license
        vec![2.0, 0.0, 2.0, 2.0], // niche
        vec![1.0, 1.0, 0.0, 1.0], // broad
        vec![4.0, 2.0, 3.0, 0.0], // all-in
    ])?;
    let col = row.transposed(); // symmetric contest
    let game = BimatrixGame::new("Market Entry", row, col)?;
    println!("{game}");
    // This instance has 5 equilibria: 2 pure anti-coordination outcomes
    // and 3 mixed blends, all exactly representable on the 1/12 grid.

    // Ground truth.
    let truth = enumerate_equilibria(&game, 1e-9);
    println!("support enumeration found {} equilibria:", truth.len());
    for eq in &truth {
        println!("  [{}] {eq}", eq.kind(1e-6));
    }

    // Solve on hardware. Intervals = 12 covers denominators 2, 3, 4.
    let solver = CNashSolver::new(&game, CNashConfig::paper(12).with_iterations(20_000), 1)?;
    let mut found = 0;
    for seed in 0..20 {
        let out = solver.run(seed);
        if out.is_equilibrium {
            found += 1;
            if found <= 3 {
                let (p, q) = out.into_pair().expect("profile");
                println!("run {seed}: found p*={p}, q*={q}");
            }
        }
    }
    println!("C-Nash succeeded in {found}/20 runs");
    Ok(())
}
