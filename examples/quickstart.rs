//! Quickstart: solve Battle of the Sexes end-to-end on the simulated
//! C-Nash hardware.
//!
//! Run with: `cargo run -p cnash-core --example quickstart`

use cnash_core::{CNashConfig, CNashSolver, NashSolver};
use cnash_game::games;
use cnash_game::support_enum::enumerate_equilibria;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A two-player game: Battle of the Sexes.
    let game = games::battle_of_the_sexes();
    println!("{game}");

    // 2. Ground truth from support enumeration (what Nashpy provides in
    //    the paper): BoS has two pure equilibria and one mixed.
    let truth = enumerate_equilibria(&game, 1e-9);
    println!("ground-truth equilibria:");
    for eq in &truth {
        println!("  {eq}");
    }

    // 3. Build the C-Nash hardware (paper configuration: FeFET
    //    variability, 8-bit ADCs, WTA trees) and run the two-phase SA.
    let config = CNashConfig::paper(12).with_iterations(10_000);
    let solver = CNashSolver::new(&game, config, 42)?;

    println!("\nC-Nash runs:");
    for seed in 0..5 {
        let out = solver.run(seed);
        let (p, q) = out.pair().expect("C-Nash always returns a profile");
        println!(
            "  seed {seed}: p*={p} q*={q}  equilibrium={}  model-time={:.2} us",
            out.is_equilibrium,
            out.total_time * 1e6,
        );
    }

    // 4. One run, inspected in detail.
    let out = solver.run(7);
    let (p, q) = out.pair().expect("profile");
    let (f1, f2) = game.payoffs(p, q)?;
    println!("\nselected solution: p*={p}, q*={q}");
    println!("expected payoffs: player1={f1:.3}, player2={f2:.3}");
    println!("exact Nash gap: {:.2e}", game.nash_gap(p, q)?);
    if let Some(t) = out.hit_time {
        println!("model time to first detection: {:.2} us", t * 1e6);
    }
    Ok(())
}
