//! Runs all three paper benchmarks (Sec. 4.2) against C-Nash and the two
//! emulated D-Wave baselines, printing a compact Table-1-style comparison.
//!
//! This is the fast tour (100 runs each); the full reproduction binaries
//! live in `cnash-bench` (`cargo run -p cnash-bench --bin table1`).
//!
//! Run with: `cargo run -p cnash-core --example paper_games --release`

use cnash_core::baselines::DWaveNashSolver;
use cnash_core::report::{render_table, tts_row};
use cnash_core::{CNashConfig, CNashSolver, ExperimentRunner, NashSolver};
use cnash_game::games;
use cnash_game::support_enum::enumerate_equilibria;
use cnash_qubo::dwave::DWaveModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = ExperimentRunner::new(100, 0);
    let mut success_rows = Vec::new();
    let mut tts_rows = Vec::new();

    for bench in games::paper_benchmarks() {
        let game = &bench.game;
        let truth = enumerate_equilibria(game, 1e-9);
        println!(
            "{} — {} actions, {} ground-truth equilibria",
            game.name(),
            game.row_actions(),
            truth.len()
        );

        let cnash_cfg = CNashConfig::paper(12).with_iterations(bench.paper_iterations / 5);
        let cnash = CNashSolver::new(game, cnash_cfg, 0)?;
        let q2000 = DWaveNashSolver::new(game, DWaveModel::dwave_2000q(), 1)?;
        let advantage = DWaveNashSolver::new(game, DWaveModel::advantage_4_1(), 1)?;

        for solver in [&cnash as &dyn NashSolver, &q2000, &advantage] {
            let r = runner.evaluate(solver, &truth);
            success_rows.push(vec![
                r.solver.clone(),
                r.game.clone(),
                format!("{:.2}", r.success_rate),
                format!("{}/{}", r.covered, r.target_count),
            ]);
            tts_rows.push(tts_row(&r));
        }
    }

    println!();
    print!(
        "{}",
        render_table(
            "Success rate of finding an NE solution (cf. paper Table 1)",
            &["solver", "game", "success %", "distinct found"],
            &success_rows,
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Time to solution (cf. paper Fig. 10)",
            &["solver", "game", "mean TTS", "TTS99"],
            &tts_rows,
        )
    );
    Ok(())
}
