//! A tour of the simulated hardware stack, bottom-up: FeFET device →
//! 1FeFET1R cell → crossbar mapping → WTA tree → full objective
//! evaluation. Mirrors the paper's Sec. 2.3 and Sec. 3 narrative.
//!
//! Run with: `cargo run -p cnash-core --example hardware_tour`

use cnash_anneal::moves::GridStrategyPair;
use cnash_core::{CNashConfig, CNashSolver};
use cnash_crossbar::stats::column_linearity_sweep;
use cnash_device::cell::{CellParams, OneFeFetOneR};
use cnash_device::fefet::{FeFet, FeFetState};
use cnash_device::preisach::{Preisach, PreisachParams};
use cnash_device::variability::VariabilityModel;
use cnash_game::games;
use cnash_wta::transient::corner_sweep;
use cnash_wta::{WtaConfig, WtaTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Preisach ferroelectric stack (Fig. 2a) ---
    let mut fe = Preisach::new(PreisachParams::default());
    fe.apply_voltage(4.0);
    println!("after +4 V write pulse:  {fe}");
    fe.apply_voltage(-4.0);
    println!("after -4 V write pulse:  {fe}");

    // --- FeFET ID-VG (Fig. 2b) ---
    let on = FeFet::ideal(FeFetState::LowVth);
    let off = FeFet::ideal(FeFetState::HighVth);
    println!("\nID-VG at the 0.8 V read point:");
    println!("  '1' (low-Vth):  {:.3e} A", on.drain_current(0.8));
    println!("  '0' (high-Vth): {:.3e} A", off.drain_current(0.8));

    // --- 1FeFET1R ON-current clamping (Fig. 2c/d) ---
    let cell = OneFeFetOneR::ideal(FeFetState::LowVth);
    println!(
        "\n1FeFET1R selected-'1' current: {:.3} uA (clamped by the series R)",
        cell.output_current(true, true) * 1e6
    );

    // --- Crossbar linearity under variability (Fig. 7a) ---
    let sweep = column_linearity_sweep(64, VariabilityModel::paper(), CellParams::default(), 7);
    println!(
        "64-cell column linearity with 40 mV / 8% spreads: R^2 = {:.5}",
        sweep.r_squared()
    );

    // --- WTA tree (Fig. 5) ---
    let tree = WtaTree::build(8, &WtaConfig::nominal(), 3);
    let currents = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0].map(|x| x * 1e-6);
    let out = tree.eval(&currents);
    println!(
        "\nWTA tree over 8 currents: max = {:.3} uA at input {} ({} cells, {:.2} ns)",
        out.value * 1e6,
        out.argmax,
        tree.cell_count(),
        out.latency * 1e9
    );
    println!("WTA settling across corners (Fig. 7b):");
    for c in corner_sweep(10e-6, 1e-12, 1e-9) {
        println!(
            "  {:>4}: {:.3} ns",
            c.corner.to_string(),
            c.settling_time * 1e9
        );
    }

    // --- Full two-phase objective evaluation (Fig. 6) ---
    let game = games::bird_game();
    let solver = CNashSolver::new(&game, CNashConfig::paper(12), 0)?;
    let state = GridStrategyPair::new(vec![8, 4, 0], vec![8, 4, 0], 12)?;
    let hw_gap = solver.evaluate(&state);
    let exact = game.nash_gap(&state.p_strategy(), &state.q_strategy())?;
    println!(
        "\ntwo-phase evaluation at the bird game's mixed NE: hardware {hw_gap:+.4}, exact {exact:+.4}"
    );
    Ok(())
}
