//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` /
//! [`Criterion::bench_function`] surface the workspace's benches use.
//! Measurement is a simple calibrated wall-clock loop (no statistics,
//! plots or comparison with saved baselines) — enough to get relative
//! timings out of `cargo bench` in hermetic environments.

use std::time::{Duration, Instant};

/// Benchmark driver handed to each registered bench function.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark `id` and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate: one iteration to size the measurement loop.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / iters as f64;
        println!("{id:<50} {:>12.3} µs/iter ({iters} iters)", mean * 1e6);
        self
    }
}

/// Timing loop runner.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
