//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in hermetic environments with no crates.io
//! access, so this vendored crate provides the (small) subset of the
//! `rand` API the reproduction uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), the [`Rng`] core trait, and the [`RngExt`]
//! extension methods `random` / `random_range`.
//!
//! Everything is fully deterministic: the same seed always yields the
//! same stream on every platform, which is what the reproduction's
//! seeded experiments and the runtime's determinism guarantees rely on.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a: f64 = rng.random();
//! let b = rng.random_range(0..10usize);
//! assert!((0.0..1.0).contains(&a));
//! assert!(b < 10);
//! let mut again = StdRng::seed_from_u64(7);
//! assert_eq!(again.random::<f64>(), a);
//! ```

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a value of type `Self` from raw generator bits.
pub trait StandardDist: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardDist for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! int_standard_dist {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard_dist!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardDist::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = StandardDist::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of type `T` from the standard uniform distribution
    /// (`[0, 1)` for floats, all values for integers, fair coin for
    /// `bool`).
    fn random<T: StandardDist>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// SplitMix64 passes BigCrush on its own and — crucially for the
    /// experiment harness, which seeds one generator per run with
    /// *sequential* seeds — decorrelates consecutive seeds well.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.random_range(-7i64..=9);
            assert!((-7..=9).contains(&v));
            let u = rng.random_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn float_range_spans_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -1.5 && hi > 1.5, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "{heads}/10000 heads");
    }
}
