//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro, range / collection / sample
//! strategies, `prop_map`, tuple composition and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed
//! (derived from the test's name), so failures are reproducible; there
//! is no shrinking.

use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod prop {
    //! Built-in strategy constructors (`prop::...` paths).

    pub mod bool {
        //! Boolean strategies.
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;

        /// Strategy producing a fair coin flip.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.random()
            }
        }

        /// Uniformly random `bool`.
        pub const ANY: AnyBool = AnyBool;
    }

    pub mod collection {
        //! Collection strategies.
        use crate::Strategy;
        use rand::rngs::StdRng;

        /// Acceptable length arguments for [`fn@vec`]: an exact length or a
        /// range of lengths.
        pub trait VecLen {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut StdRng) -> usize;
        }

        impl VecLen for usize {
            fn pick(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl VecLen for ::std::ops::Range<usize> {
            fn pick(&self, rng: &mut StdRng) -> usize {
                rand::RngExt::random_range(rng, self.clone())
            }
        }

        impl VecLen for ::std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut StdRng) -> usize {
                rand::RngExt::random_range(rng, self.clone())
            }
        }

        /// Strategy producing `Vec`s of (possibly ranged) length.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// A vector of `len` elements drawn from `element`.
        pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling from explicit value lists.
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;

        /// Strategy choosing uniformly among a fixed set of values.
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Uniform choice among `items`.
        ///
        /// # Panics
        ///
        /// Panics (on generation) if `items` is empty.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                assert!(!self.items.is_empty(), "select() needs at least one item");
                self.items[rng.random_range(0..self.items.len())].clone()
            }
        }
    }
}

/// Derives a deterministic RNG for a named test.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across platforms and builds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Fails the enclosing property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
}

pub mod prelude {
    //! One-stop imports for property tests.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..100, y in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y} out of bounds");
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec(0u32..10, 5),
            flag in prop::bool::ANY,
            pick in prop::sample::select(vec![1u8, 3, 5]),
        ) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert_ne!(pick, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honoured(x in 0u8..=255) {
            prop_assert!(u16::from(x) < 256);
        }
    }

    #[test]
    fn tuple_and_prop_map() {
        let strat = (0u32..4, 0u32..4).prop_map(|(a, b)| a + b);
        let mut rng = crate::test_rng("tuple_and_prop_map");
        for _ in 0..100 {
            assert!(crate::Strategy::generate(&strat, &mut rng) <= 6);
        }
    }
}
